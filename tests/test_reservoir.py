"""Unit tests for reservoir sampling with skipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.reservoir import ReservoirSample, SingleReservoir, skip_length


class TestSkipLength:
    def test_lower_clamp(self):
        assert skip_length(10, 1.0) == 11

    def test_inverse_transform(self):
        # ceil(m/u): for m=10, u=0.5 -> 20.
        assert skip_length(10, 0.5) == 20

    def test_small_u_big_jump(self):
        assert skip_length(5, 0.001) == 5000

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            skip_length(0, 0.5)
        with pytest.raises(ValueError):
            skip_length(5, 0.0)
        with pytest.raises(ValueError):
            skip_length(5, 1.5)

    def test_distribution_matches_law(self):
        # P(next > x) = m/x: empirical check at m=10, x=30 -> 1/3.
        rng = np.random.default_rng(0)
        m = 10
        draws = np.array([skip_length(m, 1.0 - rng.random()) for _ in range(20_000)])
        assert np.mean(draws > 30) == pytest.approx(10 / 30, abs=0.02)
        assert np.mean(draws > 100) == pytest.approx(0.1, abs=0.01)


class TestSingleReservoir:
    def test_first_offer_always_accepted(self):
        r = SingleReservoir(seed=0)
        assert r.offer("a") is True
        assert r.item == "a"

    def test_uniform_over_stream(self):
        # Over many runs, the kept item of a 20-element stream is uniform.
        counts = np.zeros(20)
        for seed in range(4000):
            r = SingleReservoir(seed=seed)
            for i in range(20):
                r.offer(i)
            counts[r.item] += 1
        freqs = counts / counts.sum()
        assert np.all(np.abs(freqs - 0.05) < 0.02)

    def test_skipping_matches_law(self):
        r = SingleReservoir(seed=1)
        r.offer("x")
        for _ in range(9):
            r.offer("y")
        assert r.seen == 10
        nxt = r.next_accept_position()
        assert nxt >= 11
        r.accept_scheduled("z")
        assert r.item == "z"
        assert r.seen == nxt

    def test_next_accept_requires_nonempty(self):
        with pytest.raises(ValueError, match="empty"):
            SingleReservoir(seed=0).next_accept_position()


class TestReservoirSample:
    def test_fills_then_caps(self):
        r = ReservoirSample(5, seed=0)
        r.extend(range(3))
        assert len(r) == 3
        r.extend(range(100))
        assert len(r) == 5
        assert r.offered == 103

    def test_sample_subset_of_stream(self):
        r = ReservoirSample(10, seed=1)
        r.extend(range(500))
        assert set(r.items) <= set(range(500))
        assert len(set(r.items)) == 10  # distinct stream -> distinct sample

    def test_without_replacement_uniformity(self):
        # Each of 30 elements should appear in a size-5 sample with
        # probability 5/30 over many runs.
        hits = np.zeros(30)
        runs = 3000
        for seed in range(runs):
            r = ReservoirSample(5, seed=seed)
            r.extend(range(30))
            for item in r.items:
                hits[item] += 1
        probs = hits / runs
        assert np.all(np.abs(probs - 5 / 30) < 0.04)

    def test_deterministic_given_seed(self):
        a = ReservoirSample(4, seed=9)
        b = ReservoirSample(4, seed=9)
        a.extend(range(200))
        b.extend(range(200))
        assert a.items == b.items

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)

    def test_items_returns_copy(self):
        r = ReservoirSample(2, seed=0)
        r.extend([1, 2])
        items = r.items
        items.append(99)
        assert len(r.items) == 2
