"""Unit tests for operations, sequences, replay, and canonicalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import FrequencyVector
from repro.streams.canonical import canonical_sequence, remaining_multiset
from repro.streams.operations import (
    Delete,
    Insert,
    OperationSequence,
    Query,
    insertions_only,
    mixed_workload,
    replay,
)


class TestOperationSequence:
    def test_counts(self):
        seq = OperationSequence([Insert(1), Insert(2), Delete(1), Query()])
        assert seq.insert_count == 2
        assert seq.delete_count == 1
        assert len(seq) == 4

    def test_validates_deletes(self):
        with pytest.raises(ValueError, match="no remaining occurrence"):
            OperationSequence([Insert(1), Delete(2)])

    def test_validates_over_deletion(self):
        with pytest.raises(ValueError):
            OperationSequence([Insert(1), Delete(1), Delete(1)])

    def test_rejects_non_operations(self):
        seq = OperationSequence()
        with pytest.raises(TypeError):
            seq.append("insert(1)")

    def test_remaining_multiset(self):
        seq = OperationSequence([Insert(1), Insert(1), Insert(2), Delete(1)])
        assert seq.remaining_multiset() == {1: 1, 2: 1}

    def test_max_delete_fraction(self):
        seq = OperationSequence([Insert(1), Delete(1), Insert(2), Insert(3)])
        # After op 2: 1 delete / 2 updates = 0.5 is the max prefix.
        assert seq.max_delete_fraction == pytest.approx(0.5)

    def test_theorem_ratio(self):
        ok = OperationSequence([Insert(1)] * 8 + [Delete(1)] * 2)
        assert ok.satisfies_theorem_2_1_ratio()
        bad = OperationSequence([Insert(1)] * 3 + [Delete(1)] * 1)
        assert not bad.satisfies_theorem_2_1_ratio()

    def test_indexing_and_iteration(self):
        ops = [Insert(1), Query()]
        seq = OperationSequence(ops)
        assert seq[0] == Insert(1)
        assert list(seq) == ops


class TestReplay:
    def test_replay_against_frequency_vector(self):
        seq = OperationSequence(
            [Insert(1), Insert(1), Query(), Delete(1), Query()]
        )
        results = replay(seq, FrequencyVector())
        assert results == [4.0, 1.0]

    def test_replay_against_sketch(self, small_stream):
        from repro.core.tugofwar import TugOfWarSketch

        seq = insertions_only(small_stream)
        seq.append(Query())
        exact = FrequencyVector.from_stream(small_stream).self_join_size()
        results = replay(seq, TugOfWarSketch(s1=400, s2=5, seed=0))
        assert len(results) == 1
        assert results[0] == pytest.approx(exact, rel=0.3)

    def test_replay_requires_estimator(self):
        with pytest.raises(TypeError, match="estimate"):
            replay([Query()], object())


class TestGenerators:
    def test_insertions_only(self):
        seq = insertions_only([5, 6, 5])
        assert seq.insert_count == 3
        assert seq.delete_count == 0

    def test_mixed_workload_valid(self, rng):
        values = rng.integers(0, 20, size=500)
        seq = mixed_workload(values, delete_fraction=0.2, rng=1)
        # Construction above validates every delete; ending Query present.
        assert isinstance(seq[-1], Query)
        assert seq.insert_count == 500

    def test_mixed_workload_fraction_respected(self, rng):
        values = rng.integers(0, 20, size=2000)
        seq = mixed_workload(values, delete_fraction=0.2, rng=2)
        frac = seq.delete_count / (seq.insert_count + seq.delete_count)
        assert 0.1 < frac < 0.3

    def test_mixed_workload_zero_fraction(self, rng):
        values = rng.integers(0, 5, size=50)
        seq = mixed_workload(values, delete_fraction=0.0, rng=0)
        assert seq.delete_count == 0

    def test_mixed_workload_queries(self, rng):
        values = rng.integers(0, 5, size=100)
        seq = mixed_workload(values, delete_fraction=0.1, rng=0, query_every=25)
        queries = sum(1 for op in seq if isinstance(op, Query))
        assert queries >= 4

    def test_mixed_workload_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            mixed_workload([1, 2], delete_fraction=0.7)

    def test_remaining_matches_canonical(self, rng):
        values = rng.integers(0, 15, size=800)
        seq = mixed_workload(values, delete_fraction=0.25, rng=3)
        from collections import Counter

        canon = Counter(canonical_sequence(seq))
        assert canon == seq.remaining_multiset()


class TestCanonicalSequence:
    def test_no_deletes_is_identity(self):
        ops = [Insert(3), Insert(1), Insert(3)]
        assert canonical_sequence(ops) == [3, 1, 3]

    def test_delete_removes_most_recent(self):
        ops = [Insert(1), Insert(2), Insert(1), Delete(1)]
        # The *second* insert(1) is nil-ed, not the first.
        assert canonical_sequence(ops) == [1, 2]

    def test_interleaved(self):
        ops = [
            Insert(1),
            Insert(1),
            Delete(1),
            Insert(2),
            Delete(1),
            Insert(1),
        ]
        assert canonical_sequence(ops) == [2, 1]

    def test_queries_ignored(self):
        ops = [Insert(1), Query(), Delete(1), Query()]
        assert canonical_sequence(ops) == []

    def test_unmatched_delete_raises(self):
        with pytest.raises(ValueError, match="no matching insert"):
            canonical_sequence([Delete(1)])

    def test_rejects_non_operations(self):
        with pytest.raises(TypeError):
            canonical_sequence([Insert(1), "delete"])

    def test_remaining_multiset_helper(self):
        ops = [Insert(1), Insert(1), Delete(1)]
        assert remaining_multiset(ops) == {1: 1}

    def test_remaining_multiset_rejects_invalid(self):
        with pytest.raises(ValueError):
            remaining_multiset([Insert(1), Delete(1), Delete(1)])

    def test_tugofwar_matches_canonical_run_exactly(self, rng):
        """Linearity: a TW sketch fed Â equals one fed the canonical A."""
        from repro.core.tugofwar import TugOfWarSketch

        values = rng.integers(0, 12, size=400)
        seq = mixed_workload(values, delete_fraction=0.25, rng=4)
        tracked = TugOfWarSketch(s1=32, s2=2, seed=6)
        for op in seq:
            if isinstance(op, Insert):
                tracked.insert(op.value)
            elif isinstance(op, Delete):
                tracked.delete(op.value)
        canonical = TugOfWarSketch(s1=32, s2=2, seed=6)
        for v in canonical_sequence(seq):
            canonical.insert(v)
        assert np.array_equal(tracked.counters, canonical.counters)
        assert tracked.estimate() == canonical.estimate()
