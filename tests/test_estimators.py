"""Unit tests for the estimator-combination machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import (
    group_shape_for,
    mean_estimate,
    median_estimate,
    median_of_means,
    split_parameters,
    theoretical_confidence,
    theoretical_relative_error,
)


class TestMedianOfMeans:
    def test_flat_input(self):
        # groups: (1,3) mean 2; (10,10) mean 10; (2,4) mean 3 -> median 3
        out = median_of_means([1, 3, 10, 10, 2, 4], s1=2, s2=3)
        assert out == pytest.approx(3.0)

    def test_2d_input(self):
        arr = np.array([[1.0, 3.0], [10.0, 10.0], [2.0, 4.0]])
        assert median_of_means(arr) == pytest.approx(3.0)

    def test_single_group_is_mean(self):
        vals = [3.0, 5.0, 7.0]
        assert median_of_means(vals, s1=3, s2=1) == pytest.approx(np.mean(vals))

    def test_single_member_groups_is_median(self):
        vals = [3.0, 100.0, 7.0]
        assert median_of_means(vals, s1=1, s2=3) == pytest.approx(np.median(vals))

    def test_flat_requires_shape(self):
        with pytest.raises(ValueError, match="requires"):
            median_of_means([1.0, 2.0])

    def test_flat_wrong_size(self):
        with pytest.raises(ValueError, match="expected s1"):
            median_of_means([1.0, 2.0, 3.0], s1=2, s2=2)

    def test_2d_shape_mismatch(self):
        arr = np.zeros((2, 3))
        with pytest.raises(ValueError, match="groups"):
            median_of_means(arr, s2=4)
        with pytest.raises(ValueError, match="members"):
            median_of_means(arr, s1=4)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            median_of_means(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="zero"):
            median_of_means(np.zeros((0, 0)))

    def test_rejects_bad_split(self):
        with pytest.raises(ValueError, match=">= 1"):
            median_of_means([1.0], s1=0, s2=1)

    def test_robust_to_outlier_group(self):
        # One wild group must not move the median.
        groups = np.array([[1.0] * 4, [1.0] * 4, [1e9] * 4])
        assert median_of_means(groups) == pytest.approx(1.0)


class TestSimpleCombiners:
    def test_mean(self):
        assert mean_estimate([2.0, 4.0]) == pytest.approx(3.0)

    def test_median(self):
        assert median_estimate([1.0, 50.0, 3.0]) == pytest.approx(3.0)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean_estimate([])

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median_estimate([])


class TestSplitParameters:
    def test_tiny_budgets_all_accuracy(self):
        for s in (1, 2, 3, 4):
            assert split_parameters(s) == (s, 1)

    def test_larger_budgets_use_five_groups(self):
        s1, s2 = split_parameters(100)
        assert s2 == 5
        assert s1 == 20

    def test_product_within_budget(self):
        for s in (1, 5, 7, 64, 1000, 16384):
            s1, s2 = split_parameters(s)
            assert 1 <= s1 * s2 <= s

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            split_parameters(0)


class TestGroupShape:
    def test_passthrough(self):
        assert group_shape_for(3, 4) == (3, 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="s1"):
            group_shape_for(0, 1)
        with pytest.raises(ValueError, match="s2"):
            group_shape_for(1, 0)


class TestTheoreticalBounds:
    def test_error_bound_formula(self):
        assert theoretical_relative_error(16) == pytest.approx(1.0)
        assert theoretical_relative_error(64) == pytest.approx(0.5)

    def test_confidence_formula(self):
        assert theoretical_confidence(2) == pytest.approx(0.5)
        assert theoretical_confidence(10) == pytest.approx(1 - 2**-5)

    def test_bounds_reject_bad_input(self):
        with pytest.raises(ValueError):
            theoretical_relative_error(0)
        with pytest.raises(ValueError):
            theoretical_confidence(0)
