"""The kernel backend contract: compiled == numpy, bit for bit.

ISSUE 9's acceptance property: every loadable :mod:`repro.kernels`
backend must reproduce the numpy oracle **exactly** — the kernels are
pure integer arithmetic, so the comparison is ``==`` on int64/uint64
arrays, never ``allclose``.  The suite drives the property through
three layers:

* raw kernels (scatter / update-one / splitmix / shard-assign) on
  adversarial inputs — boundary values ``{0, 1, p - 2}``, signed
  deletion batches, batch sizes straddling the 1024 chunk width;
* every registered **linear** sketch kind end to end: the full
  serialised state after a mixed batched + scalar workload must be
  identical under every backend;
* the selection API: env pinning, programmatic :func:`set_backend`,
  loud failure on explicitly requested unavailable backends, and the
  lazy-import guarantee (``import repro`` never pulls in numba/cffi).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.hashing import MERSENNE_PRIME_31, PolynomialHashFamily
from repro.engine.partition import HashPartitioner, stable_hash64
from repro.engine.registry import dump_sketch, sketch_class, sketch_kinds
from repro.kernels import dispatch

SRC = str(Path(__file__).resolve().parent.parent / "src")

COMPILED = [b for b in kernels.available_backends() if b != "numpy"]

LINEAR_KINDS = [k for k in sketch_kinds() if sketch_class(k).is_linear]


@pytest.fixture
def restore_backend():
    """Snapshot and restore the process-global backend selection."""
    prior = kernels.active_backend()
    try:
        yield
    finally:
        kernels.set_backend(prior)


def _build(kind: str):
    """One instance of a linear kind with deterministic parameters."""
    cls = sketch_class(kind)
    if kind == "tugofwar":
        return cls(s1=64, s2=3, seed=11)
    if kind == "fk_moments":
        return cls(k=3, s1=64, s2=3, seed=11)
    if kind == "frequency":
        return cls()
    return cls(s1=64, s2=3, seed=11)


def _coeffs(count: int, independence: int, seed: int) -> np.ndarray:
    return PolynomialHashFamily(count, independence, seed=seed).coefficients


# ----------------------------------------------------------------------
# Raw-kernel bit-identity (property-based)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("size", [1, 7, 1023, 1024, 1025])
@pytest.mark.parametrize("degree", [2, 4, 6])
def test_tugofwar_scatter_bit_identity(
    restore_backend, backend, size, degree
):
    """Compiled scatter == numpy scatter on boundary-heavy batches."""
    coeffs = _coeffs(96, degree, seed=3)
    rng = np.random.default_rng(size * degree)
    values = rng.integers(0, MERSENNE_PRIME_31, size=size, dtype=np.uint64)
    boundary = np.array([0, 1, MERSENNE_PRIME_31 - 2], dtype=np.uint64)
    values[: min(size, 3)] = boundary[: min(size, 3)]
    counts = rng.integers(-9, 10, size=size, dtype=np.int64)

    kernels.set_backend("numpy")
    z_ref = np.zeros(96, dtype=np.int64)
    kernels.tugofwar_scatter(coeffs, values, counts, z_ref)

    kernels.set_backend(backend)
    z = np.zeros(96, dtype=np.int64)
    kernels.tugofwar_scatter(coeffs, values, counts, z)
    assert (z == z_ref).all()


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("k", [1, 2, 3, 7])
def test_fk_scatter_bit_identity(restore_backend, backend, k):
    """Compiled digit scatter == numpy for several moduli."""
    coeffs = _coeffs(64, max(k, 4), seed=5)
    rng = np.random.default_rng(k)
    values = rng.integers(0, MERSENNE_PRIME_31, size=1025, dtype=np.uint64)
    values[:3] = (0, 1, MERSENNE_PRIME_31 - 2)
    counts = rng.integers(-9, 10, size=1025, dtype=np.int64)

    kernels.set_backend("numpy")
    c_ref = np.zeros((64, k), dtype=np.int64)
    kernels.fk_scatter(coeffs, values, counts, c_ref, k)

    kernels.set_backend(backend)
    c = np.zeros((64, k), dtype=np.int64)
    kernels.fk_scatter(coeffs, values, counts, c, k)
    assert (c == c_ref).all()


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.integers(0, MERSENNE_PRIME_31 - 1), min_size=1, max_size=40
    ),
    counts_seed=st.integers(0, 2**31 - 1),
    seed=st.integers(0, 2**31 - 1),
)
def test_scatter_property_all_backends(values, counts_seed, seed):
    """Hypothesis sweep: random batches agree across every backend."""
    coeffs = _coeffs(32, 4, seed=seed)
    vals = np.asarray(values, dtype=np.uint64)
    counts = np.random.default_rng(counts_seed).integers(
        -5, 6, size=vals.size, dtype=np.int64
    )
    prior = kernels.active_backend()
    try:
        kernels.set_backend("numpy")
        z_ref = np.zeros(32, dtype=np.int64)
        kernels.tugofwar_scatter(coeffs, vals, counts, z_ref)
        c_ref = np.zeros((32, 3), dtype=np.int64)
        kernels.fk_scatter(coeffs, vals, counts, c_ref, 3)
        for backend in COMPILED:
            kernels.set_backend(backend)
            z = np.zeros(32, dtype=np.int64)
            kernels.tugofwar_scatter(coeffs, vals, counts, z)
            assert (z == z_ref).all()
            c = np.zeros((32, 3), dtype=np.int64)
            kernels.fk_scatter(coeffs, vals, counts, c, 3)
            assert (c == c_ref).all()
    finally:
        kernels.set_backend(prior)


@pytest.mark.parametrize("backend", COMPILED)
def test_update_one_matches_scatter(restore_backend, backend):
    """The scalar fast path equals a one-element batch, per backend."""
    coeffs = _coeffs(48, 4, seed=9)
    kernels.set_backend(backend)
    for value in (0, 1, 12345, MERSENNE_PRIME_31 - 2):
        for count in (1, -1, 7, -7):
            z_one = np.zeros(48, dtype=np.int64)
            kernels.tugofwar_update_one(coeffs, value, count, z_one)
            z_batch = np.zeros(48, dtype=np.int64)
            kernels.tugofwar_scatter(
                coeffs,
                np.array([value], dtype=np.uint64),
                np.array([count], dtype=np.int64),
                z_batch,
            )
            assert (z_one == z_batch).all()

            c_one = np.zeros((48, 3), dtype=np.int64)
            kernels.fk_update_one(coeffs, value, count, c_one, 3)
            c_batch = np.zeros((48, 3), dtype=np.int64)
            kernels.fk_scatter(
                coeffs,
                np.array([value], dtype=np.uint64),
                np.array([count], dtype=np.int64),
                c_batch,
                3,
            )
            assert (c_one == c_batch).all()


@pytest.mark.parametrize("backend", COMPILED)
def test_splitmix_and_shard_assign_bit_identity(restore_backend, backend):
    """Partitioner kernels agree across backends, negatives included."""
    rng = np.random.default_rng(17)
    values = rng.integers(-(2**62), 2**62, size=4097, dtype=np.int64)
    for seed in (0, 1, -3, 2**40):
        kernels.set_backend("numpy")
        h_ref = kernels.splitmix64(values, seed=seed)
        a_ref = kernels.shard_assign(values, seed=seed, num_shards=7)
        kernels.set_backend(backend)
        assert (kernels.splitmix64(values, seed=seed) == h_ref).all()
        assert (
            kernels.shard_assign(values, seed=seed, num_shards=7) == a_ref
        ).all()


def test_stable_hash64_dispatches_to_kernels(restore_backend):
    """The engine's stable_hash64 and the kernel agree on every backend."""
    values = np.array([0, 1, -1, 2**40, -(2**40)], dtype=np.int64)
    reference = stable_hash64(values, seed=4)
    part_ref = HashPartitioner(5, seed=4).assign(values)
    for backend in kernels.available_backends():
        kernels.set_backend(backend)
        assert (stable_hash64(values, seed=4) == reference).all()
        assert (HashPartitioner(5, seed=4).assign(values) == part_ref).all()
    assert (part_ref == (reference % np.uint64(5)).astype(np.int64)).all()


# ----------------------------------------------------------------------
# End-to-end: every linear sketch kind, full state identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("kind", LINEAR_KINDS)
def test_linear_kind_state_identical_across_backends(
    restore_backend, backend, kind
):
    """A mixed batched + scalar workload serialises identically."""
    rng = np.random.default_rng(23)
    values = rng.integers(0, 50_000, size=1500, dtype=np.int64)
    values[:3] = (0, 1, MERSENNE_PRIME_31 - 2)
    counts = rng.integers(1, 6, size=1500, dtype=np.int64)
    signed = counts.copy()
    signed[1::5] *= -1

    def workload():
        sketch = _build(kind)
        sketch.update_from_frequencies(values, counts)  # all-positive base
        sketch.update_from_frequencies(values, signed)  # signed deltas
        sketch.insert(12345)
        sketch.update(777, 3)
        sketch.delete(12345)
        return dump_sketch(sketch)

    kernels.set_backend("numpy")
    reference = workload()
    kernels.set_backend(backend)
    assert workload() == reference


@pytest.mark.parametrize("kind", ["tugofwar", "fk_moments"])
def test_scalar_path_matches_batched_path(restore_backend, kind):
    """insert/delete/update equal one update_from_frequencies call."""
    for backend in kernels.available_backends():
        kernels.set_backend(backend)
        scalar = _build(kind)
        for v in (5, 6, 6, 7, 7, 7):
            scalar.insert(v)
        scalar.delete(7)
        scalar.update(9, 4)
        batched = _build(kind)
        batched.update_from_frequencies([5, 6, 7, 9], [1, 2, 2, 4])
        assert dump_sketch(scalar) == dump_sketch(batched)


# ----------------------------------------------------------------------
# Selection API
# ----------------------------------------------------------------------
def test_unknown_backend_name_raises(restore_backend):
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.set_backend("fortran")


def test_explicit_unavailable_backend_raises(restore_backend):
    missing = [b for b in dispatch.BACKEND_NAMES if b not in
               kernels.available_backends()]
    if not missing:
        pytest.skip("every backend is available on this host")
    with pytest.raises(kernels.KernelUnavailableError, match=missing[0]):
        kernels.set_backend(missing[0])


def test_set_backend_returns_resolved_name(restore_backend):
    assert kernels.set_backend("numpy") == "numpy"
    resolved = kernels.set_backend("auto")
    assert resolved in dispatch.BACKEND_NAMES
    assert kernels.active_backend() == resolved


def test_kernel_info_shape(restore_backend):
    info = kernels.kernel_info(probe=True)
    assert info["active"] in dispatch.BACKEND_NAMES
    assert info["requested"] in ("auto",) + dispatch.BACKEND_NAMES
    assert "numpy" in info["available"]
    assert isinstance(info["load_errors"], dict)
    json.dumps(info)  # JSON-compatible for banners and --json summaries


def test_out_of_domain_values_rejected(restore_backend):
    coeffs = _coeffs(8, 4, seed=1)
    z = np.zeros(8, dtype=np.int64)
    bad = np.array([MERSENNE_PRIME_31], dtype=np.uint64)
    with pytest.raises(ValueError, match="outside the field"):
        kernels.tugofwar_scatter(
            coeffs, bad, np.array([1], dtype=np.int64), z
        )
    with pytest.raises(ValueError, match="outside hashable domain"):
        kernels.tugofwar_update_one(coeffs, MERSENNE_PRIME_31, 1, z)
    with pytest.raises(ValueError, match="outside hashable domain"):
        kernels.fk_update_one(
            coeffs, -1, 1, np.zeros((8, 3), dtype=np.int64), 3
        )


def test_empty_batch_is_a_noop(restore_backend):
    coeffs = _coeffs(8, 4, seed=1)
    z = np.zeros(8, dtype=np.int64)
    kernels.tugofwar_scatter(
        coeffs,
        np.empty(0, dtype=np.uint64),
        np.empty(0, dtype=np.int64),
        z,
    )
    assert (z == 0).all()


# ----------------------------------------------------------------------
# Lazy-import and env-pinning guarantees (subprocess: clean sys.modules)
# ----------------------------------------------------------------------
def _run_py(code: str, **env_overrides) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop(dispatch.ENV_VAR, None)
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", code],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    ).stdout


def test_import_repro_never_imports_compiled_backends():
    """Plain ``import repro`` must not pull in numba or cffi."""
    out = _run_py(
        "import sys, repro\n"
        "import repro.core.tugofwar, repro.engine.partition\n"
        "loaded = [m for m in sys.modules\n"
        "          if m == 'numba' or m.startswith('numba.')\n"
        "          or m == 'cffi' or m.startswith('cffi.')\n"
        "          or m.endswith('kernels._numba')\n"
        "          or m.endswith('kernels._cffi')]\n"
        "print(loaded)\n"
    )
    assert out.strip() == "[]"


def test_env_numpy_disables_compiled_backends():
    """REPRO_KERNEL_BACKEND=numpy runs pure numpy, no jit anywhere."""
    out = _run_py(
        "import sys\n"
        "from repro.core.tugofwar import TugOfWarSketch\n"
        "from repro.kernels import active_backend\n"
        "sk = TugOfWarSketch(s1=16, s2=1, seed=1)\n"
        "sk.update_from_frequencies([1, 2, 3], [1, -1, 2])\n"
        "sk.insert(9)\n"
        "print(active_backend())\n"
        "print([m for m in sys.modules\n"
        "       if m == 'numba' or m.startswith('numba.')\n"
        "       or m.endswith('kernels._numba')\n"
        "       or m.endswith('kernels._cffi')])\n",
        REPRO_KERNEL_BACKEND="numpy",
    )
    lines = out.strip().splitlines()
    assert lines[0] == "numpy"
    assert lines[1] == "[]"


def test_env_selects_backend():
    """An explicit env pin resolves to exactly that backend."""
    for backend in kernels.available_backends():
        out = _run_py(
            "from repro.kernels import active_backend\n"
            "print(active_backend())\n",
            REPRO_KERNEL_BACKEND=backend,
        )
        assert out.strip() == backend
