"""Unit tests for k-TW and sample join signatures (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import join_size, self_join_size
from repro.core.join import (
    JoinSignatureFamily,
    SampleJoinSignature,
    sample_join_estimate,
)


@pytest.fixture
def relation_pair(rng):
    left = rng.integers(0, 50, size=3000).astype(np.int64)
    right = rng.integers(0, 50, size=2500).astype(np.int64)
    return left, right


class TestJoinSignatureFamily:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            JoinSignatureFamily(0)

    def test_signature_starts_empty(self):
        sig = JoinSignatureFamily(8, seed=0).signature()
        assert sig.n == 0
        assert np.all(sig.counters == 0)

    def test_signature_from_stream(self, relation_pair):
        left, _ = relation_pair
        sig = JoinSignatureFamily(16, seed=0).signature_from_stream(left)
        assert sig.n == left.size

    def test_k_and_memory_words(self):
        sig = JoinSignatureFamily(32, seed=0).signature()
        assert sig.k == 32
        assert sig.memory_words == 32


class TestTugOfWarJoinSignature:
    def test_join_estimate_close(self, relation_pair):
        left, right = relation_pair
        exact = join_size(left, right)
        family = JoinSignatureFamily(512, seed=3)
        est = family.signature_from_stream(left).join_estimate(
            family.signature_from_stream(right)
        )
        assert est == pytest.approx(exact, rel=0.3)

    def test_self_join_estimate_close(self, relation_pair):
        left, _ = relation_pair
        exact = self_join_size(left)
        family = JoinSignatureFamily(512, seed=4)
        sig = family.signature_from_stream(left)
        assert sig.self_join_estimate() == pytest.approx(exact, rel=0.3)

    def test_unbiasedness_over_families(self, rng):
        left = rng.integers(0, 12, size=400).astype(np.int64)
        right = rng.integers(0, 12, size=400).astype(np.int64)
        exact = join_size(left, right)
        estimates = []
        for seed in range(300):
            family = JoinSignatureFamily(1, seed=seed)
            estimates.append(
                family.signature_from_stream(left).join_estimate(
                    family.signature_from_stream(right)
                )
            )
        assert np.mean(estimates) == pytest.approx(exact, rel=0.25)

    def test_variance_within_lemma44_bound(self, rng):
        # Var[S(F)S(G)] <= 2 SJ(F) SJ(G): empirical variance of 1-TW
        # estimators over many families must respect it (with margin).
        left = rng.integers(0, 20, size=500).astype(np.int64)
        right = rng.integers(0, 20, size=500).astype(np.int64)
        bound = 2.0 * self_join_size(left) * self_join_size(right)
        estimates = []
        for seed in range(400):
            family = JoinSignatureFamily(1, seed=seed)
            estimates.append(
                family.signature_from_stream(left).join_estimate(
                    family.signature_from_stream(right)
                )
            )
        assert np.var(estimates) <= 1.5 * bound

    def test_deletion_reverses_insert(self):
        family = JoinSignatureFamily(16, seed=0)
        sig = family.signature()
        sig.insert(4)
        before = sig.counters.copy()
        sig.insert(9)
        sig.delete(9)
        assert np.array_equal(sig.counters, before)
        assert sig.n == 1

    def test_delete_from_empty_raises(self):
        sig = JoinSignatureFamily(4, seed=0).signature()
        with pytest.raises(ValueError, match="empty"):
            sig.delete(1)

    def test_incremental_matches_bulk(self, relation_pair):
        left, _ = relation_pair
        family = JoinSignatureFamily(32, seed=5)
        bulk = family.signature_from_stream(left)
        inc = family.signature()
        for v in left.tolist():
            inc.insert(int(v))
        assert np.array_equal(bulk.counters, inc.counters)

    def test_cross_family_rejected(self, relation_pair):
        left, right = relation_pair
        f1 = JoinSignatureFamily(8, seed=0)
        f2 = JoinSignatureFamily(8, seed=0)  # same seed, different object
        with pytest.raises(ValueError, match="different JoinSignatureFamily"):
            f1.signature_from_stream(left).join_estimate(
                f2.signature_from_stream(right)
            )

    def test_join_estimate_rejects_other_types(self):
        sig = JoinSignatureFamily(4, seed=0).signature()
        with pytest.raises(TypeError):
            sig.join_estimate("nope")

    def test_median_of_means_variant(self, relation_pair):
        left, right = relation_pair
        exact = join_size(left, right)
        family = JoinSignatureFamily(500, seed=6)
        a = family.signature_from_stream(left)
        b = family.signature_from_stream(right)
        assert a.join_estimate_median_of_means(b, groups=5) == pytest.approx(
            exact, rel=0.35
        )

    def test_median_of_means_requires_divisor(self):
        family = JoinSignatureFamily(10, seed=0)
        a, b = family.signature(), family.signature()
        with pytest.raises(ValueError, match="divide"):
            a.join_estimate_median_of_means(b, groups=3)

    def test_error_bound_formula(self):
        sig = JoinSignatureFamily(8, seed=0).signature()
        assert sig.error_bound(4.0, 9.0) == pytest.approx(np.sqrt(2 * 36 / 8))

    def test_error_bound_rejects_negative(self):
        sig = JoinSignatureFamily(8, seed=0).signature()
        with pytest.raises(ValueError):
            sig.error_bound(-1.0, 2.0)

    def test_empirical_rms_within_bound(self, rng):
        # Lemma 4.4: RMS error of k-TW <= sqrt(2 SJ SJ / k).
        left = rng.integers(0, 30, size=1000).astype(np.int64)
        right = rng.integers(0, 30, size=1000).astype(np.int64)
        exact = join_size(left, right)
        k = 64
        bound = np.sqrt(2.0 * self_join_size(left) * self_join_size(right) / k)
        errors = []
        for seed in range(60):
            family = JoinSignatureFamily(k, seed=seed)
            est = family.signature_from_stream(left).join_estimate(
                family.signature_from_stream(right)
            )
            errors.append(est - exact)
        rms = np.sqrt(np.mean(np.square(errors)))
        assert rms <= 1.3 * bound

    def test_update_from_frequencies_validates(self):
        sig = JoinSignatureFamily(4, seed=0).signature()
        with pytest.raises(ValueError, match="equal-length"):
            sig.update_from_frequencies([1], [1, 2])


class TestSampleJoinSignature:
    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            SampleJoinSignature(0.0)
        with pytest.raises(ValueError):
            SampleJoinSignature(1.5)

    def test_p_one_is_exact(self, relation_pair):
        left, right = relation_pair
        a = SampleJoinSignature(1.0, seed=0)
        b = SampleJoinSignature(1.0, seed=1)
        a.update_from_stream(left)
        b.update_from_stream(right)
        assert a.join_estimate(b) == pytest.approx(float(join_size(left, right)))

    def test_p_one_self_join_exact(self, relation_pair):
        left, _ = relation_pair
        sig = SampleJoinSignature(1.0, seed=0)
        sig.update_from_stream(left)
        assert sig.self_join_estimate() == pytest.approx(float(self_join_size(left)))

    def test_expected_memory(self):
        sig = SampleJoinSignature(0.1, seed=0)
        sig.update_from_stream(np.arange(10_000))
        assert sig.expected_memory_words == pytest.approx(1000.0)
        assert 700 <= sig.memory_words <= 1300

    def test_join_estimate_roughly_unbiased(self, rng):
        left = rng.integers(0, 15, size=2000).astype(np.int64)
        right = rng.integers(0, 15, size=2000).astype(np.int64)
        exact = join_size(left, right)
        estimates = []
        for seed in range(60):
            a = SampleJoinSignature(0.2, seed=seed)
            b = SampleJoinSignature(0.2, seed=seed + 1000)
            a.update_from_stream(left)
            b.update_from_stream(right)
            estimates.append(a.join_estimate(b))
        assert np.mean(estimates) == pytest.approx(exact, rel=0.2)

    def test_insert_and_delete_counts(self):
        sig = SampleJoinSignature(1.0, seed=0)
        sig.insert(5)
        sig.insert(5)
        assert sig.memory_words == 2
        sig.delete(5)
        assert sig.n == 1
        assert sig.memory_words == 1

    def test_delete_from_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            SampleJoinSignature(0.5, seed=0).delete(1)

    def test_join_estimate_rejects_other_types(self):
        with pytest.raises(TypeError):
            SampleJoinSignature(0.5, seed=0).join_estimate(42)


class TestSampleJoinEstimateOffline:
    def test_p_one_exact(self, relation_pair):
        left, right = relation_pair
        est = sample_join_estimate(left, right, 1.0, rng=0)
        assert est == pytest.approx(float(join_size(left, right)))

    def test_roughly_unbiased(self, rng):
        left = rng.integers(0, 10, size=1500).astype(np.int64)
        right = rng.integers(0, 10, size=1500).astype(np.int64)
        exact = join_size(left, right)
        ests = [
            sample_join_estimate(left, right, 0.25, rng=seed) for seed in range(60)
        ]
        assert np.mean(ests) == pytest.approx(exact, rel=0.2)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            sample_join_estimate([1], [1], 0.0)

    def test_empty_sample_gives_zero(self):
        assert sample_join_estimate([], [1, 2], 0.5, rng=0) == 0.0
