"""Property-based tests (hypothesis) on exact invariants.

Statistical accuracy is asserted in seeded unit tests; here we check
properties that must hold for *every* input: linearity, deletion
reversal, canonical-sequence equivalence, data-structure invariants,
serialisation round-trips, and estimator identities on degenerate
inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frequency import FrequencyVector, self_join_size
from repro.core.naivesampling import naive_sampling_estimate_offline
from repro.core.samplecount import (
    SampleCountFastQuery,
    SampleCountSketch,
    sample_count_estimate_offline,
)
from repro.core.tugofwar import TugOfWarSketch
from repro.engine.ingest import ingest_operations
from repro.streams.canonical import canonical_sequence
from repro.streams.operations import Delete, Insert

values_list = st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=120)
nonempty_values = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=120
)


def ops_strategy():
    """Valid insert/delete sequences over a small domain."""

    @st.composite
    def build(draw):
        raw = draw(
            st.lists(
                st.tuples(st.booleans(), st.integers(min_value=0, max_value=10)),
                max_size=150,
            )
        )
        live: dict[int, int] = {}
        ops = []
        for is_delete, v in raw:
            if is_delete and live.get(v, 0) > 0:
                live[v] -= 1
                ops.append(Delete(v))
            else:
                live[v] = live.get(v, 0) + 1
                ops.append(Insert(v))
        return ops

    return build()


class TestTugOfWarProperties:
    @given(values=values_list, seed=st.integers(0, 2**20))
    @settings(max_examples=60, deadline=None)
    def test_batch_equals_elementwise(self, values, seed):
        a = TugOfWarSketch(s1=8, s2=2, seed=seed)
        a.update_from_stream(np.asarray(values, dtype=np.int64))
        b = TugOfWarSketch(s1=8, s2=2, seed=seed)
        for v in values:
            b.insert(v)
        assert np.array_equal(a.counters, b.counters)

    @given(ops=ops_strategy(), seed=st.integers(0, 2**20))
    @settings(max_examples=60, deadline=None)
    def test_tracked_equals_canonical(self, ops, seed):
        tracked = TugOfWarSketch(s1=8, s2=2, seed=seed)
        for op in ops:
            if isinstance(op, Insert):
                tracked.insert(op.value)
            else:
                tracked.delete(op.value)
        canonical = TugOfWarSketch(s1=8, s2=2, seed=seed)
        for v in canonical_sequence(ops):
            canonical.insert(v)
        assert np.array_equal(tracked.counters, canonical.counters)

    @given(values=values_list, seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_estimate_nonnegative_and_n_correct(self, values, seed):
        sk = TugOfWarSketch(s1=4, s2=3, seed=seed)
        sk.update_from_stream(np.asarray(values, dtype=np.int64))
        assert sk.estimate() >= 0.0
        assert sk.n == len(values)

    @given(values=nonempty_values, seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_serialisation_roundtrip(self, values, seed):
        sk = TugOfWarSketch(s1=4, s2=2, seed=seed)
        sk.update_from_stream(np.asarray(values, dtype=np.int64))
        clone = TugOfWarSketch.from_dict(sk.to_dict())
        assert clone.estimate() == sk.estimate()

    @given(
        left=values_list,
        right=values_list,
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_concatenation(self, left, right, seed):
        a = TugOfWarSketch(s1=4, s2=2, seed=seed)
        a.update_from_stream(np.asarray(left, dtype=np.int64))
        b = TugOfWarSketch(s1=4, s2=2, seed=seed)
        b.update_from_stream(np.asarray(right, dtype=np.int64))
        merged = a.merge(b)
        full = TugOfWarSketch(s1=4, s2=2, seed=seed)
        full.update_from_stream(np.asarray(left + right, dtype=np.int64))
        assert np.array_equal(merged.counters, full.counters)

    @given(values=nonempty_values, seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_single_distinct_value_exact(self, values, seed):
        # Streams with one distinct value are estimated exactly.
        v = values[0]
        sk = TugOfWarSketch(s1=4, s2=2, seed=seed)
        for _ in values:
            sk.insert(v)
        assert sk.estimate() == pytest.approx(float(len(values) ** 2))


class TestSampleCountProperties:
    @given(ops=ops_strategy(), seed=st.integers(0, 2**20))
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_throughout(self, ops, seed):
        sk = SampleCountSketch(s1=6, s2=2, seed=seed, initial_range=40)
        fv = FrequencyVector()
        for op in ops:
            if isinstance(op, Insert):
                sk.insert(op.value)
                fv.insert(op.value)
            else:
                sk.delete(op.value)
                fv.delete(op.value)
        sk.check_invariants()
        assert sk.n == fv.total
        assert sk.estimate() >= 0.0 or fv.total == 0

    @given(ops=ops_strategy(), seed=st.integers(0, 2**20))
    @settings(max_examples=60, deadline=None)
    def test_fast_query_matches_base(self, ops, seed):
        base = SampleCountSketch(s1=6, s2=2, seed=seed, initial_range=40)
        fast = SampleCountFastQuery(s1=6, s2=2, seed=seed, initial_range=40)
        for op in ops:
            if isinstance(op, Insert):
                base.insert(op.value)
                fast.insert(op.value)
            else:
                base.delete(op.value)
                fast.delete(op.value)
        fast.check_invariants()
        assert fast.estimate() == pytest.approx(base.estimate())

    @given(ops=ops_strategy(), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_sample_values_live_in_multiset(self, ops, seed):
        sk = SampleCountSketch(s1=6, s2=2, seed=seed, initial_range=40)
        fv = FrequencyVector()
        for op in ops:
            if isinstance(op, Insert):
                sk.insert(op.value)
                fv.insert(op.value)
            else:
                sk.delete(op.value)
                fv.delete(op.value)
        for v in sk.sample_values():
            assert fv.frequency(v) >= 1

    @given(n=st.integers(1, 300), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_all_distinct_offline_exact(self, n, seed):
        est = sample_count_estimate_offline(np.arange(n), 8, 2, rng=seed)
        assert est == pytest.approx(float(n))

    @given(values=nonempty_values, seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_offline_estimate_in_valid_range(self, values, seed):
        # X_i = n(2r-1) with 1 <= r <= max frequency, so the estimate
        # lies within [n, n(2 f_max - 1)].
        arr = np.asarray(values, dtype=np.int64)
        n = arr.size
        f_max = int(np.bincount(arr).max())
        est = sample_count_estimate_offline(arr, 6, 2, rng=seed)
        assert n <= est <= n * (2 * f_max - 1)


class TestNaiveSamplingProperties:
    @given(n=st.integers(1, 300), s=st.integers(2, 64), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_all_distinct_exact(self, n, s, seed):
        est = naive_sampling_estimate_offline(np.arange(n), s, rng=seed)
        assert est == pytest.approx(float(n))

    @given(values=nonempty_values, seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_full_sample_is_exact(self, values, seed):
        arr = np.asarray(values, dtype=np.int64)
        est = naive_sampling_estimate_offline(arr, arr.size, rng=seed)
        assert est == pytest.approx(float(self_join_size(arr)))


class TestVectorisedIngestCanonicalEquivalence:
    """Every vectorised ingest path must match the canonical reduction.

    `ingest_operations` is the engine's single entry point for
    insert/delete programs; depending on the sketch it routes through
    the histogram fold (tug-of-war, frequency), the segment walker
    (sample-count), or the skip-jump reservoir (naive-sampling).  For
    linear sketches the result must be bit-identical to a build over
    the canonical sequence of Section 2.1; for the order-sensitive
    samplers it must be bit-identical to the per-element operation
    loop (whose canonical-sequence equivalence is distributional and
    asserted elsewhere).  Invalid programs — a delete with no matching
    insert — must be rejected, exactly as the canonical reduction
    rejects them.
    """

    @given(ops=ops_strategy(), seed=st.integers(0, 2**20))
    @settings(max_examples=60, deadline=None)
    def test_histogram_fold_matches_canonical_tugofwar(self, ops, seed):
        folded = TugOfWarSketch(s1=8, s2=2, seed=seed)
        ingest_operations(folded, ops)
        canonical = TugOfWarSketch(s1=8, s2=2, seed=seed)
        canonical.update_from_stream(
            np.asarray(canonical_sequence(ops), dtype=np.int64)
        )
        assert np.array_equal(folded.counters, canonical.counters)
        assert folded.n == canonical.n

    @given(ops=ops_strategy())
    @settings(max_examples=60, deadline=None)
    def test_histogram_fold_matches_canonical_frequency(self, ops):
        folded = FrequencyVector()
        ingest_operations(folded, ops)
        assert folded == FrequencyVector.from_stream(
            np.asarray(canonical_sequence(ops), dtype=np.int64)
        )

    @given(ops=ops_strategy(), seed=st.integers(0, 2**20))
    @settings(max_examples=60, deadline=None)
    def test_segment_walker_matches_per_element_samplecount(self, ops, seed):
        walked = SampleCountSketch(s1=6, s2=2, seed=seed, initial_range=40)
        ingest_operations(walked, ops)
        loop = SampleCountSketch(s1=6, s2=2, seed=seed, initial_range=40)
        for op in ops:
            if isinstance(op, Insert):
                loop.insert(op.value)
            else:
                loop.delete(op.value)
        assert walked.to_dict() == loop.to_dict()  # RNG state included
        walked.check_invariants()
        # ... and the sample only ever holds canonical survivors.
        survivors = FrequencyVector.from_stream(
            np.asarray(canonical_sequence(ops), dtype=np.int64)
        )
        for v in walked.sample_values():
            assert survivors.frequency(v) >= 1

    @given(values=values_list, seed=st.integers(0, 2**20))
    @settings(max_examples=60, deadline=None)
    def test_skip_jump_reservoir_matches_per_element(self, values, seed):
        from repro.core.naivesampling import NaiveSamplingEstimator

        ops = [Insert(v) for v in values]
        jumped = NaiveSamplingEstimator(s=8, seed=seed)
        ingest_operations(jumped, ops)
        loop = NaiveSamplingEstimator(s=8, seed=seed)
        for v in values:
            loop.insert(v)
        assert jumped.to_dict() == loop.to_dict()

    @given(ops=ops_strategy(), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_delete_without_insert_rejected_everywhere(self, ops, seed):
        bogus = ops + [Delete(999)]  # 999 is outside the generated domain
        with pytest.raises(ValueError):
            canonical_sequence(bogus)
        with pytest.raises(ValueError):
            ingest_operations(TugOfWarSketch(s1=4, s2=2, seed=seed), bogus)
        with pytest.raises((ValueError, KeyError)):
            ingest_operations(FrequencyVector(), bogus)


class TestFrequencyVectorProperties:
    @given(values=values_list)
    @settings(max_examples=60, deadline=None)
    def test_stream_matches_incremental(self, values):
        arr = np.asarray(values, dtype=np.int64)
        bulk = FrequencyVector.from_stream(arr)
        inc = FrequencyVector()
        for v in values:
            inc.insert(v)
        assert bulk == inc
        assert bulk.self_join_size() == self_join_size(arr)

    @given(values=values_list)
    @settings(max_examples=60, deadline=None)
    def test_sj_bounds(self, values):
        # n <= SJ <= n^2, with SJ = n iff all distinct.
        arr = np.asarray(values, dtype=np.int64)
        sj = self_join_size(arr)
        n = arr.size
        assert n <= sj <= n * n or n == 0
        if n and np.unique(arr).size == n:
            assert sj == n

    @given(ops=ops_strategy())
    @settings(max_examples=60, deadline=None)
    def test_canonical_histogram_matches_tracked(self, ops):
        fv = FrequencyVector()
        for op in ops:
            if isinstance(op, Insert):
                fv.insert(op.value)
            else:
                fv.delete(op.value)
        canon = FrequencyVector.from_stream(
            np.asarray(canonical_sequence(ops), dtype=np.int64)
        )
        assert fv == canon
