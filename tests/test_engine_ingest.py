"""Batched ingestion equivalence: the pipeline must never change results.

Satellite requirement of ISSUE 1: replaying a mixed insert/delete
workload through the batched pipeline yields identical sketch state
(linearity) for tug-of-war and consistent (here: bit-identical, since
the vectorised paths draw the same random numbers at the same
positions) estimates for the sampling sketches under a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import FrequencyVector
from repro.core.naivesampling import NaiveSamplingEstimator
from repro.core.samplecount import SampleCountFastQuery, SampleCountSketch
from repro.core.tugofwar import TugOfWarSketch
from repro.engine.ingest import (
    coalesce_operations,
    ingest_operations,
    ingest_stream,
    replay_batched,
)
from repro.streams.operations import (
    Delete,
    Insert,
    Query,
    insertions_only,
    mixed_workload,
    replay,
)


def _workload(n=4000, delete_fraction=0.2, query_every=500):
    rng = np.random.default_rng(5)
    values = (rng.zipf(1.5, size=n) % 300).astype(np.int64)
    return mixed_workload(
        values, delete_fraction=delete_fraction, rng=7, query_every=query_every
    )


def _replay_per_element(sequence, tracker):
    """The seed's original per-element driver (reference semantics)."""
    answer = getattr(tracker, "estimate", None) or tracker.self_join_size
    results = []
    for op in sequence:
        if isinstance(op, Insert):
            tracker.insert(op.value)
        elif isinstance(op, Delete):
            tracker.delete(op.value)
        elif isinstance(op, Query):
            results.append(float(answer()))
    return results


class TestCoalesce:
    def test_signed_histogram(self):
        ops = [Insert(3), Insert(3), Insert(5), Delete(3), Query(), Insert(7), Delete(7)]
        values, counts = coalesce_operations(ops)
        assert values.tolist() == [3, 5]
        assert counts.tolist() == [1, 1]

    def test_empty_and_cancelling(self):
        values, counts = coalesce_operations([Insert(1), Delete(1)])
        assert values.size == 0 and counts.size == 0

    def test_rejects_non_operations(self):
        with pytest.raises(TypeError):
            coalesce_operations([Insert(1), "insert(2)"])


class TestReplayEquivalence:
    def test_tugofwar_bit_identical_on_mixed_workload(self):
        seq = _workload()
        reference = TugOfWarSketch(64, 5, seed=11)
        batched = TugOfWarSketch(64, 5, seed=11)
        ref_answers = _replay_per_element(seq, reference)
        new_answers = replay_batched(seq, batched)
        assert new_answers == ref_answers
        assert np.array_equal(reference.counters, batched.counters)
        assert reference.n == batched.n

    @pytest.mark.parametrize("cls", [SampleCountSketch, SampleCountFastQuery])
    def test_samplecount_identical_estimates_on_mixed_workload(self, cls):
        seq = _workload()
        reference = cls(32, 5, seed=11)
        batched = cls(32, 5, seed=11)
        ref_answers = _replay_per_element(seq, reference)
        new_answers = replay_batched(seq, batched)
        assert new_answers == ref_answers
        batched.check_invariants()
        assert reference.sample_values() == batched.sample_values()

    def test_naivesampling_identical_on_insert_only_workload(self):
        values = (np.random.default_rng(3).integers(0, 200, size=5000)).astype(np.int64)
        seq = insertions_only(values)
        seq.append(Query())
        reference = NaiveSamplingEstimator(s=160, seed=11)
        batched = NaiveSamplingEstimator(s=160, seed=11)
        assert replay_batched(seq, batched) == _replay_per_element(seq, reference)
        assert reference._reservoir.items == batched._reservoir.items

    def test_frequency_vector_exact_on_mixed_workload(self):
        seq = _workload()
        reference = FrequencyVector()
        batched = FrequencyVector()
        assert replay_batched(seq, batched) == _replay_per_element(seq, reference)
        assert reference == batched

    def test_public_replay_routes_through_batched_pipeline(self):
        seq = _workload(n=1000)
        a = TugOfWarSketch(32, 3, seed=2)
        b = TugOfWarSketch(32, 3, seed=2)
        assert replay(seq, a) == replay_batched(seq, b)
        assert np.array_equal(a.counters, b.counters)

    def test_replay_requires_estimator(self):
        with pytest.raises(TypeError):
            replay_batched([Query()], object())

    def test_replay_rejects_non_operations(self):
        tracker = FrequencyVector()
        with pytest.raises(TypeError):
            replay_batched([Insert(1), 42], tracker)

    @pytest.mark.parametrize(
        "tracker_factory", [FrequencyVector, lambda: TugOfWarSketch(16, 3, seed=0)]
    )
    def test_linear_path_still_rejects_invalid_deletes(self, tracker_factory):
        """Coalescing must not mask a delete with no matching insert.

        [Delete(5), Insert(5)] nets to an empty histogram, but the
        per-element semantics (multiset initially empty) make the
        delete a caller bug — the batched pipeline must still raise.
        """
        with pytest.raises(ValueError, match="no remaining occurrence"):
            replay_batched([Delete(5), Insert(5), Query()], tracker_factory())

    def test_linear_path_allows_deletes_across_flushes(self):
        sketch = TugOfWarSketch(16, 3, seed=0)
        answers = replay_batched(
            [Insert(5), Query(), Delete(5), Query()], sketch
        )
        assert answers == [1.0, 0.0]

    def test_histogram_ingestion_without_expansion(self):
        """Huge per-value counts must not materialise count elements."""
        from repro.core.naivesampling import NaiveSamplingEstimator

        estimator = NaiveSamplingEstimator(s=32, seed=1)
        estimator.update_from_frequencies([7, 9], [10**12, 10**12])
        assert estimator.n == 2 * 10**12
        tracker = SampleCountSketch(16, 2, seed=1)
        tracker.update_from_frequencies([7, 9], [10**12, 10**12])
        tracker.check_invariants()
        assert tracker.n == 2 * 10**12


class TestIngestHelpers:
    def test_ingest_stream_matches_bulk_load(self):
        values = (np.random.default_rng(8).integers(0, 99, size=3000)).astype(np.int64)
        a = TugOfWarSketch(32, 3, seed=4)
        b = TugOfWarSketch(32, 3, seed=4)
        ingest_stream(a, values)
        b.update_from_stream(values)
        assert np.array_equal(a.counters, b.counters)

    def test_ingest_stream_falls_back_to_insert_loop(self):
        class Recorder:
            """A foreign tracker with only per-element insert."""

            def __init__(self):
                self.seen = []

            def insert(self, value):
                self.seen.append(value)

        recorder = Recorder()
        ingest_stream(recorder, [1, 2, 2])
        assert recorder.seen == [1, 2, 2]

    def test_ingest_operations_ignores_queries(self):
        tracker = FrequencyVector()
        ingest_operations(tracker, [Insert(1), Query(), Insert(1), Delete(1)])
        assert tracker.frequency(1) == 1

    def test_update_via_frequencies_equals_element_wise(self):
        """The linearity property the engine's coalescing relies on."""
        values = np.array([4, 9, 4, 4, 9, 1], dtype=np.int64)
        a = TugOfWarSketch(16, 3, seed=0)
        for v in values.tolist():
            a.insert(v)
        a.delete(9)
        b = TugOfWarSketch(16, 3, seed=0)
        b.update_from_frequencies(np.array([1, 4, 9]), np.array([1, 3, 1]))
        assert np.array_equal(a.counters, b.counters)
