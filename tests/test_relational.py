"""Unit tests for the relational layer: Relation, catalogs, optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relational.catalog import (
    SampleCatalog,
    SignatureCatalog,
    UnknownRelationError,
)
from repro.relational.optimizer import (
    JoinPlan,
    UnknownRelationSizeError,
    choose_join_order,
    plan_cost,
)
from repro.relational.relation import Relation


class TestRelation:
    def test_construction_from_values(self):
        r = Relation("orders", [1, 1, 2])
        assert r.size == 3
        assert r.distinct == 2

    def test_empty_relation(self):
        r = Relation("empty")
        assert r.size == 0
        assert r.self_join_size() == 0

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            Relation("")

    def test_insert_delete(self):
        r = Relation("r")
        r.insert(5)
        r.insert(5)
        r.delete(5)
        assert r.size == 1

    def test_self_join_size(self):
        r = Relation("r", [1, 1, 1, 2])
        assert r.self_join_size() == 10

    def test_join_size(self):
        a = Relation("a", [1, 1, 2])
        b = Relation("b", [1, 2, 2])
        assert a.join_size(b) == 2 + 2

    def test_join_rejects_other_types(self):
        with pytest.raises(TypeError):
            Relation("a").join_size([1, 2])

    def test_fact11_bound(self, rng):
        a = Relation("a", rng.integers(0, 20, size=300))
        b = Relation("b", rng.integers(0, 20, size=300))
        assert a.join_size(b) <= a.join_size_bound(b)

    def test_values_array_roundtrip(self):
        r = Relation("r", [3, 1, 3])
        assert r.values_array().tolist() == [1, 3, 3]

    def test_len(self):
        assert len(Relation("r", [1, 2])) == 2


class TestSignatureCatalog:
    @pytest.fixture
    def catalog(self, rng):
        cat = SignatureCatalog(k=512, seed=0)
        self.streams = {
            "A": rng.integers(0, 40, size=3000),
            "B": rng.integers(0, 40, size=2500),
            "C": rng.integers(100, 140, size=2000),  # disjoint from A/B
        }
        for name, vals in self.streams.items():
            cat.register(name, vals)
        return cat

    def test_register_and_contains(self, catalog):
        assert "A" in catalog and "Z" not in catalog
        assert catalog.relations == ["A", "B", "C"]
        assert len(catalog) == 3

    def test_duplicate_register_raises(self, catalog):
        with pytest.raises(KeyError, match="already"):
            catalog.register("A")

    def test_drop(self, catalog):
        catalog.drop("C")
        assert "C" not in catalog
        with pytest.raises(UnknownRelationError):
            catalog.drop("C")

    def test_join_estimate_close(self, catalog):
        from repro.core.frequency import join_size

        exact = join_size(self.streams["A"], self.streams["B"])
        assert catalog.join_estimate("A", "B") == pytest.approx(exact, rel=0.35)

    def test_disjoint_join_near_zero(self, catalog):
        from repro.core.frequency import join_size

        exact = join_size(self.streams["A"], self.streams["C"])
        assert exact == 0
        est = catalog.join_estimate("A", "C")
        # Error bound is sqrt(2 SJ_A SJ_C / k); the estimate must be small
        # relative to the non-disjoint join sizes.
        assert abs(est) < catalog.join_error_bound("A", "C") * 4

    def test_self_join_estimate(self, catalog):
        from repro.core.frequency import self_join_size

        exact = self_join_size(self.streams["A"])
        assert catalog.self_join_estimate("A") == pytest.approx(exact, rel=0.35)

    def test_incremental_maintenance(self, catalog):
        before = catalog.join_estimate("A", "B")
        catalog.insert("A", 7)
        catalog.delete("A", 7)
        assert catalog.join_estimate("A", "B") == pytest.approx(before)

    def test_memory_words(self, catalog):
        assert catalog.memory_words == 512 * 3
        assert catalog.k == 512

    def test_unknown_relation_raises(self, catalog):
        with pytest.raises(UnknownRelationError, match="not registered"):
            catalog.join_estimate("A", "Z")

    def test_unknown_relation_error_is_not_keyerror(self, catalog):
        # The old raw-mapping KeyError looked like an internal bug; the
        # dedicated error names the relation and lists what exists.
        try:
            catalog.join_estimate("A", "Z")
        except UnknownRelationError as exc:
            assert not isinstance(exc, KeyError)
            assert exc.name == "Z"
            assert exc.registered == ["A", "B", "C"]
            assert "register" in str(exc)
        else:  # pragma: no cover - the raise is the point
            raise AssertionError("expected UnknownRelationError")


class TestSampleCatalog:
    def test_register_and_estimate(self, rng):
        cat = SampleCatalog(p=0.5, seed=0)
        a = rng.integers(0, 30, size=2000)
        b = rng.integers(0, 30, size=2000)
        cat.register("A", a)
        cat.register("B", b)
        from repro.core.frequency import join_size

        exact = join_size(a, b)
        assert cat.join_estimate("A", "B") == pytest.approx(exact, rel=0.4)

    def test_p_one_exact(self, rng):
        cat = SampleCatalog(p=1.0, seed=0)
        a = rng.integers(0, 30, size=1000)
        b = rng.integers(0, 30, size=1000)
        cat.register("A", a)
        cat.register("B", b)
        from repro.core.frequency import join_size

        assert cat.join_estimate("A", "B") == pytest.approx(float(join_size(a, b)))

    def test_duplicate_register_raises(self):
        cat = SampleCatalog(p=0.5, seed=0)
        cat.register("A")
        with pytest.raises(KeyError):
            cat.register("A")

    def test_insert_delete_and_drop(self):
        cat = SampleCatalog(p=1.0, seed=0)
        cat.register("A")
        cat.insert("A", 1)
        cat.delete("A", 1)
        cat.drop("A")
        assert "A" not in cat

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            SampleCatalog(p=0.0)

    def test_unknown_relation_clear_error(self):
        cat = SampleCatalog(p=0.5, seed=0)
        cat.register("A")
        with pytest.raises(UnknownRelationError, match="not registered"):
            cat.join_estimate("A", "missing")
        with pytest.raises(UnknownRelationError):
            cat.drop("missing")

    def test_memory_words_tracks_samples(self, rng):
        cat = SampleCatalog(p=0.1, seed=1)
        cat.register("A", rng.integers(0, 10, size=5000))
        assert 300 <= cat.memory_words <= 750


class _ExactOracle:
    """join_estimate oracle backed by exact relation statistics."""

    def __init__(self, relations: dict[str, Relation]):
        self.relations = relations

    def join_estimate(self, left: str, right: str) -> float:
        return float(self.relations[left].join_size(self.relations[right]))


class TestOptimizer:
    @pytest.fixture
    def relations(self, rng):
        # C is selective against A (few shared values); B joins A heavily.
        a = Relation("A", rng.integers(0, 20, size=1000))
        b = Relation("B", rng.integers(0, 20, size=1000))
        c = Relation("C", np.concatenate([rng.integers(0, 2, size=50), rng.integers(1000, 1100, size=950)]))
        return {"A": a, "B": b, "C": c}

    def test_plan_prefers_selective_pair(self, relations):
        oracle = _ExactOracle(relations)
        sizes = {k: r.size for k, r in relations.items()}
        plan = choose_join_order(["A", "B", "C"], sizes, oracle)
        assert isinstance(plan, JoinPlan)
        # The cheapest first pair involves C (tiny join with A or B).
        assert "C" in plan.order[:2]

    def test_plan_cost_matches_choice(self, relations):
        oracle = _ExactOracle(relations)
        sizes = {k: r.size for k, r in relations.items()}
        plan = choose_join_order(["A", "B", "C"], sizes, oracle)
        recomputed = plan_cost(plan.order, sizes, oracle.join_estimate)
        assert recomputed == pytest.approx(plan.estimated_cost)

    def test_greedy_beats_or_ties_worst_order(self, relations):
        oracle = _ExactOracle(relations)
        sizes = {k: r.size for k, r in relations.items()}
        plan = choose_join_order(["A", "B", "C"], sizes, oracle)
        import itertools

        costs = [
            plan_cost(order, sizes, oracle.join_estimate)
            for order in itertools.permutations(["A", "B", "C"])
        ]
        assert plan.estimated_cost <= max(costs)

    def test_signature_catalog_picks_near_optimal_plan(self, relations):
        # End-to-end: the estimated plan's *true* cost should be close
        # to the exact-statistics plan's true cost.
        oracle = _ExactOracle(relations)
        sizes = {k: r.size for k, r in relations.items()}
        cat = SignatureCatalog(k=1024, seed=5)
        for name, rel in relations.items():
            cat.register(name, rel.values_array())
        est_plan = choose_join_order(["A", "B", "C"], sizes, cat)
        exact_plan = choose_join_order(["A", "B", "C"], sizes, oracle)
        true_cost_est = plan_cost(est_plan.order, sizes, oracle.join_estimate)
        true_cost_exact = plan_cost(exact_plan.order, sizes, oracle.join_estimate)
        assert true_cost_est <= 3.0 * max(true_cost_exact, 1.0)

    def test_requires_two_relations(self, relations):
        oracle = _ExactOracle(relations)
        with pytest.raises(ValueError, match="two relations"):
            choose_join_order(["A"], {"A": 10}, oracle)

    def test_plan_cost_requires_two(self):
        with pytest.raises(ValueError):
            plan_cost(["A"], {"A": 1}, lambda a, b: 0.0)


class TestOptimizerTypedErrors:
    """ISSUE 3 satellite: no bare KeyError / assert deaths in the optimizer."""

    def make_oracle(self, rng):
        return _ExactOracle({
            "A": Relation("A", rng.integers(0, 20, size=100)),
            "B": Relation("B", rng.integers(0, 20, size=100)),
        })

    def test_missing_size_is_typed_not_keyerror(self, rng):
        oracle = self.make_oracle(rng)
        with pytest.raises(UnknownRelationSizeError) as excinfo:
            choose_join_order(["A", "B"], {"A": 100}, oracle)
        assert not isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, LookupError)
        # The message is actionable: names the relation, lists what is
        # recorded, and says what to supply.
        message = str(excinfo.value)
        assert "'B'" in message and "sizes recorded for: A" in message
        assert excinfo.value.name == "B" and excinfo.value.recorded == ["A"]

    def test_missing_size_with_nothing_recorded(self, rng):
        oracle = self.make_oracle(rng)
        with pytest.raises(UnknownRelationSizeError, match="<none>"):
            choose_join_order(["A", "B"], {}, oracle)

    def test_plan_cost_missing_size_is_typed(self):
        with pytest.raises(UnknownRelationSizeError, match="'B'"):
            plan_cost(["A", "B"], {"A": 1}, lambda a, b: 0.0)

    def test_plan_cost_rejects_duplicate_order(self):
        # An explicit order repeating a relation is a caller error;
        # silently deduplicating would score a different plan.
        with pytest.raises(ValueError, match="repeats a relation"):
            plan_cost(["A", "B", "A"], {"A": 1, "B": 1}, lambda a, b: 1.0)

    def test_negative_size_rejected(self, rng):
        oracle = self.make_oracle(rng)
        with pytest.raises(ValueError, match="negative size"):
            choose_join_order(["A", "B"], {"A": 100, "B": -1}, oracle)

    def test_nan_estimate_rejected_with_pair_named(self):
        class _NaNCatalog:
            def join_estimate(self, left, right):
                return float("nan")

        with pytest.raises(ValueError, match=r"non-finite.*'A'.*'B'"):
            choose_join_order(["A", "B"], {"A": 10, "B": 10}, _NaNCatalog())

    def test_inf_estimate_rejected_in_plan_cost(self):
        with pytest.raises(ValueError, match="non-finite"):
            plan_cost(
                ["A", "B"], {"A": 1, "B": 1}, lambda a, b: float("inf")
            )

    def test_empty_relations_is_valueerror_not_assert(self, rng):
        # The old implementation could only fail an `assert` here
        # (which vanishes under python -O); degenerate inputs now raise
        # a real ValueError.
        oracle = self.make_oracle(rng)
        with pytest.raises(ValueError, match="two relations"):
            choose_join_order([], {}, oracle)
        with pytest.raises(ValueError, match="two relations"):
            choose_join_order(["A", "A"], {"A": 10}, oracle)  # dupes collapse

    def test_catalog_exceptions_propagate_untouched(self, rng):
        class _Broken:
            def join_estimate(self, left, right):
                raise RuntimeError("backend down")

        with pytest.raises(RuntimeError, match="backend down"):
            choose_join_order(["A", "B"], {"A": 1, "B": 1}, _Broken())
