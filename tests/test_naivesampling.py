"""Unit tests for the naive-sampling baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import self_join_size
from repro.core.naivesampling import (
    NaiveSamplingEstimator,
    naive_sampling_estimate_offline,
    scale_sample_self_join,
)


class TestScaling:
    def test_all_distinct_sample_gives_n(self):
        # SJ(S) = s (no duplicates) -> X = n exactly.
        assert scale_sample_self_join(10, 10, 500) == pytest.approx(500.0)

    def test_single_value_sample_gives_n_squared(self):
        # SJ(S) = s^2 -> X = n + n(n-1) = n^2 exactly.
        assert scale_sample_self_join(25, 5, 100) == pytest.approx(100.0**2)

    def test_degenerate_sample_size_one(self):
        assert scale_sample_self_join(1, 1, 77) == 77.0

    def test_empty_stream(self):
        assert scale_sample_self_join(0, 0, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            scale_sample_self_join(1, -1, 10)
        with pytest.raises(ValueError):
            scale_sample_self_join(1, 1, -10)


class TestStreamingEstimator:
    def test_empty_estimate_zero(self):
        assert NaiveSamplingEstimator(s=4, seed=0).estimate() == 0.0

    def test_all_distinct_exact(self):
        est = NaiveSamplingEstimator(s=50, seed=0)
        est.update_from_stream(np.arange(1000))
        assert est.estimate() == pytest.approx(1000.0)

    def test_single_value_exact(self):
        est = NaiveSamplingEstimator(s=20, seed=0)
        est.update_from_stream(np.zeros(300, dtype=np.int64))
        assert est.estimate() == pytest.approx(300.0**2)

    def test_estimate_close_with_large_sample(self, small_stream):
        exact = self_join_size(small_stream)
        est = NaiveSamplingEstimator(s=1500, seed=1)
        est.update_from_stream(small_stream)
        assert est.estimate() == pytest.approx(exact, rel=0.3)

    def test_sample_size_capped_at_n(self):
        est = NaiveSamplingEstimator(s=100, seed=0)
        est.update_from_stream(np.arange(10))
        assert est.sample_size == 10
        assert est.n == 10

    def test_memory_words(self):
        assert NaiveSamplingEstimator(s=64, seed=0).memory_words == 64

    def test_delete_not_supported(self):
        with pytest.raises(NotImplementedError):
            NaiveSamplingEstimator(s=4, seed=0).delete(1)

    def test_rejects_bad_sample_size(self):
        with pytest.raises(ValueError):
            NaiveSamplingEstimator(s=0)

    def test_unbiasedness_over_seeds(self):
        stream = np.array([1] * 20 + list(range(10, 90)), dtype=np.int64)
        exact = self_join_size(stream)
        estimates = []
        for seed in range(300):
            est = NaiveSamplingEstimator(s=10, seed=seed)
            est.update_from_stream(stream)
            estimates.append(est.estimate())
        assert np.mean(estimates) == pytest.approx(exact, rel=0.2)


class TestOfflineEstimator:
    def test_all_distinct_exact(self):
        assert naive_sampling_estimate_offline(np.arange(500), 32, rng=0) == pytest.approx(
            500.0
        )

    def test_single_value_exact(self):
        stream = np.full(200, 9, dtype=np.int64)
        assert naive_sampling_estimate_offline(stream, 16, rng=0) == pytest.approx(
            200.0**2
        )

    def test_empty_stream(self):
        assert naive_sampling_estimate_offline(np.array([], dtype=np.int64), 4) == 0.0

    def test_sample_larger_than_stream_is_exact(self, small_stream):
        exact = self_join_size(small_stream)
        est = naive_sampling_estimate_offline(small_stream, small_stream.size, rng=0)
        assert est == pytest.approx(float(exact))

    def test_close_to_exact_with_big_sample(self, uniform_stream):
        exact = self_join_size(uniform_stream)
        est = naive_sampling_estimate_offline(uniform_stream, 2000, rng=3)
        assert est == pytest.approx(exact, rel=0.3)

    def test_rejects_bad_sample_size(self):
        with pytest.raises(ValueError):
            naive_sampling_estimate_offline(np.arange(10), 0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            naive_sampling_estimate_offline(np.zeros((3, 3), dtype=np.int64), 2)

    def test_lemma23_failure_mode(self):
        # o(sqrt n) samples of the "n/2 pairs" relation usually see no
        # duplicate, estimating ~n instead of 2n (Lemma 2.3).
        from repro.data.adversarial import lemma23_pair

        n = 10_000
        _, r2 = lemma23_pair(n, rng=0)
        s = 20  # << sqrt(10000) = 100
        estimates = np.array(
            [naive_sampling_estimate_offline(r2, s, rng=seed) for seed in range(50)]
        )
        # Most runs report close to n, a factor ~2 below SJ(R2) = 2n.
        assert np.median(estimates) < 1.3 * n
