"""Unit tests for multi-way join signatures (core.multijoin)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multijoin import MultiJoinFamily


def multiway_join_size(relations: list[np.ndarray]) -> float:
    """Exact m-way equality-join size on one attribute."""
    from collections import Counter

    counters = [Counter(r.tolist()) for r in relations]
    shared = set(counters[0])
    for c in counters[1:]:
        shared &= set(c)
    total = 0
    for v in shared:
        prod = 1
        for c in counters:
            prod *= c[v]
        total += prod
    return float(total)


@pytest.fixture
def three_relations(rng):
    return [rng.integers(0, 20, size=800).astype(np.int64) for _ in range(3)]


class TestConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MultiJoinFamily(0, 2)

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            MultiJoinFamily(4, 1)

    def test_signatures_cover_positions(self):
        fam = MultiJoinFamily(8, 4, seed=0)
        sigs = fam.signatures()
        assert [s.position for s in sigs] == [0, 1, 2, 3]

    def test_position_bounds(self):
        fam = MultiJoinFamily(8, 3, seed=0)
        with pytest.raises(ValueError):
            fam.signature(3)
        with pytest.raises(ValueError):
            fam.position_signs(-1, 0)


class TestSignCollapse:
    def test_product_of_signs_is_one(self):
        # The defining property: prod_j xi_j(v) = 1 for every value.
        for ways in (2, 3, 5):
            fam = MultiJoinFamily(16, ways, seed=1)
            for v in (0, 1, 17, 12345):
                prod = np.ones(16, dtype=np.int64)
                for j in range(ways):
                    prod *= fam.position_signs(j, v).astype(np.int64)
                assert np.all(prod == 1), (ways, v)

    def test_signs_many_matches_one(self):
        fam = MultiJoinFamily(8, 3, seed=2)
        values = np.arange(20)
        for j in range(3):
            many = fam.position_signs_many(j, values)
            for idx, v in enumerate(values):
                assert np.array_equal(many[:, idx], fam.position_signs(j, int(v)))


class TestEstimation:
    def test_two_way_matches_exact_roughly(self, rng):
        a = rng.integers(0, 15, size=1500).astype(np.int64)
        b = rng.integers(0, 15, size=1500).astype(np.int64)
        exact = multiway_join_size([a, b])
        fam = MultiJoinFamily(2048, 2, seed=3)
        sigs = fam.signatures()
        sigs[0].update_from_stream(a)
        sigs[1].update_from_stream(b)
        assert fam.join_estimate(sigs) == pytest.approx(exact, rel=0.3)

    def test_three_way_unbiased_over_seeds(self, three_relations):
        exact = multiway_join_size(three_relations)
        estimates = []
        for seed in range(150):
            fam = MultiJoinFamily(8, 3, seed=seed)
            sigs = fam.signatures()
            for sig, rel in zip(sigs, three_relations):
                sig.update_from_stream(rel)
            estimates.append(fam.join_estimate(sigs))
        assert np.mean(estimates) == pytest.approx(exact, rel=0.3)

    def test_three_way_accuracy_with_large_k(self, three_relations):
        exact = multiway_join_size(three_relations)
        fam = MultiJoinFamily(8192, 3, seed=4)
        sigs = fam.signatures()
        for sig, rel in zip(sigs, three_relations):
            sig.update_from_stream(rel)
        assert fam.join_estimate(sigs) == pytest.approx(exact, rel=0.5)

    def test_estimate_order_independent(self, three_relations):
        fam = MultiJoinFamily(64, 3, seed=5)
        sigs = fam.signatures()
        for sig, rel in zip(sigs, three_relations):
            sig.update_from_stream(rel)
        a = fam.join_estimate(sigs)
        b = fam.join_estimate(list(reversed(sigs)))
        assert a == pytest.approx(b)

    def test_estimate_validates_signature_set(self, three_relations):
        fam = MultiJoinFamily(16, 3, seed=6)
        sigs = fam.signatures()
        with pytest.raises(ValueError, match="exactly 3"):
            fam.join_estimate(sigs[:2])
        with pytest.raises(ValueError, match="cover positions"):
            fam.join_estimate([sigs[0], sigs[0], sigs[2]])
        other = MultiJoinFamily(16, 3, seed=6)
        with pytest.raises(ValueError, match="different MultiJoinFamily"):
            fam.join_estimate(other.signatures())

    def test_disjoint_three_way_near_zero(self, rng):
        rels = [
            (rng.integers(0, 10, size=500) + 100 * i).astype(np.int64)
            for i in range(3)
        ]
        fam = MultiJoinFamily(4096, 3, seed=7)
        sigs = fam.signatures()
        for sig, rel in zip(sigs, rels):
            sig.update_from_stream(rel)
        # Exact is 0; the estimate must sit within a few standard
        # deviations, where Var <= prod_j SJ(R_j) / k (the m-way
        # analogue of Lemma 4.4's bound).
        from repro.core.frequency import self_join_size

        sj_prod = 1.0
        for rel in rels:
            sj_prod *= self_join_size(rel)
        std_bound = (sj_prod / 4096) ** 0.5
        assert abs(fam.join_estimate(sigs)) < 4 * std_bound


class TestUpdates:
    def test_insert_delete_reverses(self):
        fam = MultiJoinFamily(32, 3, seed=8)
        sig = fam.signature(1)
        sig.insert(4)
        before = sig.counters.copy()
        sig.insert(9)
        sig.delete(9)
        assert np.array_equal(sig.counters, before)

    def test_delete_empty_raises(self):
        sig = MultiJoinFamily(4, 2, seed=0).signature(0)
        with pytest.raises(ValueError, match="empty"):
            sig.delete(1)

    def test_bulk_matches_incremental(self, rng):
        fam = MultiJoinFamily(32, 3, seed=9)
        values = rng.integers(0, 25, size=400).astype(np.int64)
        bulk = fam.signature(1)
        bulk.update_from_stream(values)
        inc = fam.signature(1)
        for v in values.tolist():
            inc.insert(int(v))
        assert np.array_equal(bulk.counters, inc.counters)


class TestRetractionSemantics:
    """ISSUE 3 satellite: the engine's vectorised-ingest validation,
    applied to multi-join signatures (PR 2 gave it to every engine
    path; the m-way signatures had been skipped)."""

    def test_signed_histogram_matches_per_element(self, rng):
        fam = MultiJoinFamily(32, 3, seed=4)
        batch = fam.signature(1)
        batch.update_from_frequencies([3, 5, 3, 9], [2, 1, -1, 3])
        inc = fam.signature(1)
        for _ in range(2):
            inc.insert(3)
        inc.insert(5)
        inc.delete(3)
        for _ in range(3):
            inc.insert(9)
        assert np.array_equal(batch.counters, inc.counters)
        assert batch.n == inc.n == 5

    def test_update_signed_count(self):
        fam = MultiJoinFamily(16, 2, seed=4)
        sig = fam.signature(0)
        sig.update(7, 3)
        sig.update(7, -2)
        inc = fam.signature(0)
        inc.insert(7)
        assert np.array_equal(sig.counters, inc.counters)
        assert sig.n == 1

    def test_net_negative_batch_rejected(self):
        fam = MultiJoinFamily(16, 2, seed=4)
        sig = fam.signature(0)
        sig.insert(1)
        with pytest.raises(ValueError, match="negative"):
            sig.update_from_frequencies([1, 2], [-1, -1])

    def test_update_below_zero_rejected(self):
        sig = MultiJoinFamily(16, 2, seed=4).signature(1)
        with pytest.raises(ValueError, match="negative"):
            sig.update(5, -1)

    def test_mismatched_histogram_rejected(self):
        sig = MultiJoinFamily(16, 2, seed=4).signature(0)
        with pytest.raises(ValueError, match="equal-length"):
            sig.update_from_frequencies([1, 2], [1])

    def test_engine_pipeline_rejects_delete_without_insert(self):
        # is_linear + update_from_frequencies route multi-join
        # signatures through the engine's linear path, whose live
        # multiset tracking rejects an unmatched delete exactly where
        # a per-element replay would have surfaced the caller bug.
        from repro.engine.ingest import ingest_operations
        from repro.streams.operations import Delete, Insert

        fam = MultiJoinFamily(16, 2, seed=4)
        sig = fam.signature(1)
        assert sig.is_linear
        with pytest.raises(ValueError, match="no remaining occurrence"):
            ingest_operations(sig, [Insert(4), Delete(7)])

    def test_engine_pipeline_matches_per_element(self, rng):
        from repro.engine.ingest import ingest_operations
        from repro.streams.operations import Delete, Insert

        fam = MultiJoinFamily(32, 3, seed=6)
        values = rng.integers(0, 10, size=200).tolist()
        ops = [Insert(v) for v in values] + [Delete(v) for v in values[:50]]
        piped = fam.signature(2)
        ingest_operations(piped, ops)
        inc = fam.signature(2)
        for v in values:
            inc.insert(int(v))
        for v in values[:50]:
            inc.delete(int(v))
        assert np.array_equal(piped.counters, inc.counters)
        assert piped.n == inc.n

    def test_deletions_preserve_estimate_quality(self, rng):
        # Retracting half of one relation must leave the estimate
        # tracking the *current* multisets, not the historical stream.
        fam = MultiJoinFamily(4096, 3, seed=11)
        rels = [rng.integers(0, 12, size=600).astype(np.int64) for _ in range(3)]
        sigs = fam.signatures()
        for sig, rel in zip(sigs, rels):
            sig.update_from_stream(rel)
        # Delete the first 300 tuples of relation 1 via a signed batch.
        gone, counts = np.unique(rels[1][:300], return_counts=True)
        sigs[1].update_from_frequencies(gone, -counts)
        remaining = [rels[0], rels[1][300:], rels[2]]
        exact = multiway_join_size(remaining)
        est = fam.join_estimate(sigs)
        assert est == pytest.approx(exact, rel=0.5)
