"""Windowed signature catalogs: join estimates restricted to time windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import join_size, self_join_size
from repro.core.tugofwar import TugOfWarSketch
from repro.relational import UnknownRelationError, WindowedSignatureCatalog
from repro.store import WindowAlignmentError


@pytest.fixture
def tuples(rng):
    """Two relations' timestamped tuple streams over [0, 100)."""
    n = 4000
    return {
        "A": (rng.integers(0, 100, size=n), rng.integers(0, 40, size=n)),
        "B": (rng.integers(0, 100, size=n), rng.integers(0, 40, size=n)),
    }


@pytest.fixture
def catalog(tuples):
    cat = WindowedSignatureCatalog(k=640, bucket_width=10, seed=11)
    for name, (ts, values) in tuples.items():
        cat.register(name)
        cat.ingest(name, ts, values)
    return cat


def window_values(tuples, name, t0, t1):
    ts, values = tuples[name]
    return values[(ts >= t0) & (ts < t1)]


class TestWindowedJoinEstimates:
    def test_windowed_join_close_to_exact(self, catalog, tuples):
        for t0, t1 in ((0, 100), (20, 60)):
            exact = join_size(
                window_values(tuples, "A", t0, t1),
                window_values(tuples, "B", t0, t1),
            )
            est = catalog.join_estimate("A", "B", t0, t1)
            assert est == pytest.approx(exact, rel=0.5)

    def test_windowed_self_join_close_to_exact(self, catalog, tuples):
        exact = self_join_size(window_values(tuples, "A", 30, 80))
        est = catalog.self_join_estimate("A", 30, 80)
        assert est == pytest.approx(exact, rel=0.5)

    def test_window_estimate_equals_per_window_catalog(self, catalog, tuples):
        """The maintenance guarantee: a window query reproduces exactly
        the estimate of a signature maintained over only that window."""
        mono_a = TugOfWarSketch(s1=128, s2=5, seed=11)
        mono_a.update_from_stream(window_values(tuples, "A", 20, 60))
        mono_b = TugOfWarSketch(s1=128, s2=5, seed=11)
        mono_b.update_from_stream(window_values(tuples, "B", 20, 60))
        assert catalog.join_estimate("A", "B", 20, 60) == mono_a.inner_product(
            mono_b
        )

    def test_join_error_bound_positive(self, catalog):
        assert catalog.join_error_bound("A", "B", 0, 100) > 0.0

    def test_misaligned_window_raises(self, catalog):
        with pytest.raises(WindowAlignmentError):
            catalog.join_estimate("A", "B", 5, 60)

    def test_outer_alignment(self, catalog, tuples):
        est = catalog.join_estimate("A", "B", 5, 55, align="outer")
        assert est == catalog.join_estimate("A", "B", 0, 60)

    def test_outer_alignment_uses_one_common_window(self, catalog):
        # After compacting only A, an outer window that splits A's big
        # span must expand *both* relations to the same effective
        # window — never compare A over [0,100) against B over [40,60).
        catalog.store("A").compact()  # A becomes one span [0, 100)
        assert catalog.window_bounds(
            40, 60, names=("A", "B"), align="outer"
        ) == (0, 100)
        est = catalog.join_estimate("A", "B", 40, 60, align="outer")
        assert est == catalog.join_estimate("A", "B", 0, 100)


class TestCatalogManagement:
    def test_register_contains_drop(self, catalog):
        assert "A" in catalog and len(catalog) == 2
        assert catalog.relations == ["A", "B"]
        catalog.drop("B")
        assert "B" not in catalog

    def test_duplicate_register_raises(self, catalog):
        with pytest.raises(KeyError, match="already"):
            catalog.register("A")

    def test_unknown_relation_clear_error(self, catalog):
        with pytest.raises(UnknownRelationError, match="not registered"):
            catalog.join_estimate("A", "nope", 0, 100)
        with pytest.raises(UnknownRelationError):
            catalog.ingest("nope", [1], [1])
        with pytest.raises(UnknownRelationError):
            catalog.drop("nope")

    def test_memory_and_k(self, catalog):
        assert catalog.k == 640
        # 2 relations x 10 buckets x 640 words
        assert catalog.memory_words == 2 * 10 * 640

    def test_store_access_for_retention(self, catalog, tuples):
        full = catalog.join_estimate("A", "B", 0, 100)
        catalog.store("A").compact(before=50)
        catalog.store("B").compact(before=50)
        assert catalog.join_estimate("A", "B", 0, 100) == full

    def test_deletes_update_window_estimates(self, tuples):
        cat = WindowedSignatureCatalog(k=64, bucket_width=10, seed=2)
        cat.register("A")
        cat.ingest("A", [5, 5], [9, 9])
        with_dupes = cat.self_join_estimate("A", 0, 10)
        cat.ingest("A", [5], [9], counts=[-1])
        assert cat.self_join_estimate("A", 0, 10) < with_dupes

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="k >= s2"):
            WindowedSignatureCatalog(k=2, bucket_width=10, s2=5)

    def test_k_reports_actual_allocation(self):
        # A k that is not a multiple of s2 drops the remainder words;
        # the property reports what was actually allocated.
        cat = WindowedSignatureCatalog(k=642, bucket_width=10, s2=5, seed=0)
        assert cat.k == 640
        cat.register("A")
        cat.ingest("A", [5], [1])
        assert cat.memory_words == 640

    def test_default_seed_still_merges_and_joins(self, tuples):
        # With no explicit seed the spec pins fresh entropy once, so
        # buckets and relations still share one hash family.
        cat = WindowedSignatureCatalog(k=64, bucket_width=10)
        for name, (ts, values) in tuples.items():
            cat.register(name)
            cat.ingest(name, ts, values)
        assert cat.join_estimate("A", "B", 0, 100) >= 0.0
        assert cat.self_join_estimate("A", 20, 60) >= 0.0
