"""Unit tests for the sample-count tracker (Figure 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import self_join_size
from repro.core.samplecount import (
    SampleCountFastQuery,
    SampleCountSketch,
    sample_count_estimate_offline,
)


def loaded(stream, s1=64, s2=5, seed=7, cls=SampleCountSketch, initial_range=None):
    arr = np.asarray(stream, dtype=np.int64)
    sk = cls(
        s1=s1,
        s2=s2,
        seed=seed,
        initial_range=initial_range if initial_range is not None else arr.size,
    )
    sk.update_from_stream(arr)
    return sk


class TestConstruction:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SampleCountSketch(s1=0)

    def test_rejects_bad_initial_range(self):
        with pytest.raises(ValueError, match="initial_range"):
            SampleCountSketch(s1=2, initial_range=0)

    def test_default_initial_range_is_s_log_s(self):
        sk = SampleCountSketch(s1=16, s2=4, seed=0)
        s = 64
        assert sk.initial_range == s * 6  # ceil(log2 64) = 6

    def test_memory_words(self):
        assert SampleCountSketch(s1=8, s2=2, seed=0).memory_words == 16


class TestInsertOnly:
    def test_empty_estimate_zero(self):
        assert SampleCountSketch(s1=4, seed=0).estimate() == 0.0

    def test_all_distinct_exact(self):
        # Every r_i = 1, so every X_i = n and the estimate is exactly n = SJ.
        stream = np.arange(500, dtype=np.int64)
        sk = loaded(stream, seed=3)
        assert sk.estimate() == pytest.approx(500.0)

    def test_sample_fills_up(self, small_stream):
        sk = loaded(small_stream, s1=16, s2=2, seed=5)
        assert sk.sample_size == 32  # every slot sampled within initial_range=n

    def test_invariants_after_inserts(self, small_stream):
        sk = loaded(small_stream, seed=9)
        sk.check_invariants()

    def test_estimate_close_on_skewed_stream(self, small_stream):
        exact = self_join_size(small_stream)
        sk = loaded(small_stream, s1=600, s2=5, seed=17)
        assert sk.estimate() == pytest.approx(exact, rel=0.35)

    def test_estimate_close_on_uniform_stream(self, uniform_stream):
        exact = self_join_size(uniform_stream)
        sk = loaded(uniform_stream, s1=600, s2=5, seed=18)
        assert sk.estimate() == pytest.approx(exact, rel=0.35)

    def test_query_alias(self, small_stream):
        sk = loaded(small_stream, seed=1)
        assert sk.query() == sk.estimate()

    def test_n_counts_inserts(self):
        sk = SampleCountSketch(s1=2, seed=0)
        for v in [1, 1, 2]:
            sk.insert(v)
        assert sk.n == 3

    def test_estimate_before_any_slot_triggers(self):
        # Stream far shorter than the smallest selected position: the
        # sample can be empty; estimate falls back to n.
        sk = SampleCountSketch(s1=4, s2=1, seed=0, initial_range=10_000)
        sk.insert(1)
        if sk.sample_size == 0:
            assert sk.estimate() == 1.0

    def test_basic_estimators_nan_for_empty_slots(self):
        sk = SampleCountSketch(s1=4, s2=1, seed=0, initial_range=10_000)
        sk.insert(1)
        x = sk.basic_estimators()
        assert np.isnan(x).sum() == 4 - sk.sample_size

    def test_sample_values_subset_of_stream(self, small_stream):
        sk = loaded(small_stream, seed=4)
        assert set(sk.sample_values()) <= set(small_stream.tolist())

    def test_unbiasedness_over_seeds(self):
        stream = np.array([1] * 40 + list(range(10, 170)), dtype=np.int64)
        exact = self_join_size(stream)
        estimates = [
            loaded(stream, s1=1, s2=1, seed=seed).estimate() for seed in range(400)
        ]
        assert np.mean(estimates) == pytest.approx(exact, rel=0.25)


class TestDeletions:
    def test_insert_delete_leaves_empty(self):
        sk = SampleCountSketch(s1=8, s2=2, seed=0, initial_range=4)
        for v in [1, 2, 3, 4]:
            sk.insert(v)
        for v in [4, 3, 2, 1]:
            sk.delete(v)
        assert sk.n == 0
        assert sk.sample_size == 0
        assert sk.estimate() == 0.0
        sk.check_invariants()

    def test_delete_most_recent_semantics(self):
        # Insert v three times; a slot samples the 3rd insert.  One
        # delete must evict it; further deletes must not underflow.
        sk = SampleCountSketch(s1=4, s2=1, seed=1, initial_range=3)
        sk.insert(7)
        sk.insert(7)
        sk.insert(7)
        before = sk.sample_size
        sk.delete(7)
        sk.check_invariants()
        assert sk.n == 2
        assert sk.sample_size <= before

    def test_delete_untracked_value_only_decrements_n(self, small_stream):
        sk = loaded(small_stream, seed=2)
        absent = int(small_stream.max()) + 100
        sk.insert(absent)  # may or may not enter the sample
        n_before = sk.n
        sk.delete(absent)
        assert sk.n == n_before - 1
        sk.check_invariants()

    def test_delete_from_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            SampleCountSketch(s1=2, seed=0).delete(1)

    def test_mixed_workload_invariants(self, rng):
        sk = SampleCountSketch(s1=32, s2=3, seed=6, initial_range=500)
        live: list[int] = []
        for _ in range(3000):
            if live and rng.random() < 0.2:
                idx = int(rng.integers(0, len(live)))
                v = live.pop(idx)
                sk.delete(v)
            else:
                v = int(rng.integers(0, 40))
                live.append(v)
                sk.insert(v)
            if _ % 500 == 0:
                sk.check_invariants()
        sk.check_invariants()
        assert sk.n == len(live)

    def test_estimate_reasonable_after_deletions(self, rng):
        # Build a stream, delete a quarter of it, compare against the
        # exact SJ of what remains.
        values = rng.integers(0, 30, size=4000).tolist()
        sk = SampleCountSketch(s1=500, s2=5, seed=8, initial_range=4000)
        from repro.core.frequency import FrequencyVector

        fv = FrequencyVector()
        for v in values:
            sk.insert(int(v))
            fv.insert(int(v))
        deleted = 0
        for v in values:
            if deleted >= 1000:
                break
            sk.delete(int(v))
            fv.delete(int(v))
            deleted += 1
        sk.check_invariants()
        assert sk.estimate() == pytest.approx(fv.self_join_size(), rel=0.5)


class TestReservoirBehaviour:
    def test_long_stream_keeps_sample_full(self):
        # Past the warm-up, every slot stays in the sample (replacement
        # discards are immediately refilled).
        sk = SampleCountSketch(s1=8, s2=2, seed=3, initial_range=16)
        for v in np.random.default_rng(0).integers(0, 10, size=5000).tolist():
            sk.insert(int(v))
        assert sk.sample_size == 16
        sk.check_invariants()

    def test_sample_positions_roughly_uniform(self):
        # The value at a sampled slot for an all-distinct stream equals
        # its sampled position (value i inserted at position i+1), so
        # sampled values should spread across the whole stream.
        n = 20_000
        sk = SampleCountSketch(s1=64, s2=4, seed=10, initial_range=n)
        for v in range(n):
            sk.insert(v)
        vals = np.array(sk.sample_values(), dtype=np.float64)
        assert vals.size == 256
        assert 0.35 * n < vals.mean() < 0.65 * n
        assert vals.max() > 0.8 * n and vals.min() < 0.2 * n


class TestOfflineEstimator:
    def test_all_distinct_exact(self):
        assert sample_count_estimate_offline(np.arange(1000), 64, 2, rng=0) == 1000.0

    def test_empty_stream(self):
        assert sample_count_estimate_offline(np.array([], dtype=np.int64), 4, 1) == 0.0

    def test_single_value_stream(self):
        # All positions give r = n - p + 1; estimates are n(2r-1) with
        # expectation n^2.  Check the median-of-means lands in range.
        stream = np.zeros(100, dtype=np.int64)
        est = sample_count_estimate_offline(stream, 256, 5, rng=1)
        assert 0 < est <= 100 * (2 * 100 - 1)

    def test_close_to_exact(self, small_stream):
        exact = self_join_size(small_stream)
        est = sample_count_estimate_offline(small_stream, 800, 5, rng=2)
        assert est == pytest.approx(exact, rel=0.3)

    def test_matches_tracking_class_distributionally(self, small_stream):
        # Offline and tracking implementations of the same estimator
        # should produce estimates with similar medians over seeds.
        exact = self_join_size(small_stream)
        offline = np.median(
            [
                sample_count_estimate_offline(small_stream, 128, 5, rng=seed)
                for seed in range(30)
            ]
        )
        tracking = np.median(
            [
                loaded(small_stream, s1=128, s2=5, seed=seed).estimate()
                for seed in range(30)
            ]
        )
        assert offline == pytest.approx(exact, rel=0.35)
        assert tracking == pytest.approx(exact, rel=0.35)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            sample_count_estimate_offline(np.zeros((2, 2), dtype=np.int64), 4, 1)

    def test_unbiasedness_over_seeds(self):
        stream = np.array([1] * 30 + list(range(100, 200)), dtype=np.int64)
        exact = self_join_size(stream)
        estimates = [
            sample_count_estimate_offline(stream, 1, 1, rng=seed)
            for seed in range(2000)
        ]
        assert np.mean(estimates) == pytest.approx(exact, rel=0.15)
