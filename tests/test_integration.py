"""Integration tests: whole-library scenarios across modules."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    FrequencyVector,
    JoinSignatureFamily,
    Relation,
    SampleCountSketch,
    SignatureCatalog,
    TugOfWarSketch,
    choose_join_order,
    join_size,
    self_join_size,
)
from repro.data.registry import load_dataset
from repro.streams.operations import Delete, Insert, Query, mixed_workload, replay


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestTrackingScenario:
    """A data-warehouse batch-update scenario (Section 5's use case)."""

    def test_all_trackers_follow_updates(self, rng):
        values = rng.integers(0, 50, size=6000)
        seq = mixed_workload(values, delete_fraction=0.2, rng=1, query_every=2000)

        exact = FrequencyVector()
        tw = TugOfWarSketch(s1=500, s2=5, seed=0)
        sc = SampleCountSketch(s1=500, s2=5, seed=0, initial_range=2000)

        exact_answers = replay(seq, exact)
        tw_answers = replay(seq, tw)
        sc_answers = replay(seq, sc)

        assert len(exact_answers) == len(tw_answers) == len(sc_answers)
        # Skip the earliest query (tiny n; large relative noise).
        for e, t, s in list(zip(exact_answers, tw_answers, sc_answers))[1:]:
            assert t == pytest.approx(e, rel=0.5)
            assert s == pytest.approx(e, rel=0.6)

    def test_theorem21_regime_accuracy(self, rng):
        # Inserts outnumber deletes 4:1 (Theorem 2.1's precondition);
        # sample-count stays accurate.
        ops = []
        live = []
        for v in rng.integers(0, 20, size=4000).tolist():
            ops.append(Insert(int(v)))
            live.append(int(v))
            if len(ops) % 5 == 4:
                idx = int(rng.integers(0, len(live)))
                ops.append(Delete(live.pop(idx)))
        ops.append(Query())
        exact = FrequencyVector()
        sc = SampleCountSketch(s1=600, s2=5, seed=3, initial_range=1500)
        (e,) = replay(ops, exact)
        (s,) = replay(ops, sc)
        assert s == pytest.approx(e, rel=0.5)


class TestJoinScenario:
    """Optimizer picks plans from signatures alone (Section 4 use case)."""

    def test_catalog_vs_exact_optimizer(self, rng):
        streams = {
            "lineitem": rng.integers(0, 100, size=8000),
            "orders": rng.integers(0, 100, size=4000),
            "customer": np.concatenate(
                [rng.integers(0, 5, size=200), rng.integers(500, 600, size=1800)]
            ),
        }
        relations = {k: Relation(k, v) for k, v in streams.items()}
        sizes = {k: r.size for k, r in relations.items()}

        class ExactOracle:
            def join_estimate(self, a, b):
                return float(relations[a].join_size(relations[b]))

        catalog = SignatureCatalog(k=2048, seed=9)
        for name, vals in streams.items():
            catalog.register(name, vals)

        est_plan = choose_join_order(list(streams), sizes, catalog)
        exact_plan = choose_join_order(list(streams), sizes, ExactOracle())
        # With k = 2048 the estimates are sharp enough to pick the same
        # first join as exact statistics.
        assert set(est_plan.order[:2]) == set(exact_plan.order[:2])

    def test_fact11_bridges_self_join_trackers_to_joins(self, rng):
        # Self-join trackers can bound any pairwise join (Fact 1.1).
        a = rng.integers(0, 30, size=3000)
        b = rng.integers(0, 30, size=3000)
        tw_a = TugOfWarSketch(s1=600, s2=5, seed=1)
        tw_b = TugOfWarSketch(s1=600, s2=5, seed=2)
        tw_a.update_from_stream(a)
        tw_b.update_from_stream(b)
        bound = repro.bounds.join_size_upper_bound(tw_a.estimate(), tw_b.estimate())
        assert join_size(a, b) <= bound * 1.3  # estimation slack

    def test_ktw_vs_fact11_sharpness(self, rng):
        # The k-TW estimate is far sharper than the Fact 1.1 bound on
        # skewed-but-weakly-joining relations.
        a = np.concatenate([np.zeros(2000, dtype=np.int64), rng.integers(1, 500, size=2000)])
        b = np.concatenate([np.ones(2000, dtype=np.int64), rng.integers(1, 500, size=2000)])
        exact = join_size(a, b)
        fam = JoinSignatureFamily(1024, seed=4)
        est = fam.signature_from_stream(a).join_estimate(fam.signature_from_stream(b))
        fact11 = repro.bounds.join_size_upper_bound(self_join_size(a), self_join_size(b))
        assert abs(est - exact) < 0.2 * fact11


class TestDatasetToFigurePipeline:
    def test_end_to_end_sweep_on_table1_dataset(self):
        from repro.experiments.harness import accuracy_sweep
        from repro.experiments.metrics import convergence_from_sweep

        values = load_dataset("mf2", rng=0, scale=0.5)
        sweep = accuracy_sweep(
            values, dataset="mf2", sample_sizes=[64, 256, 1024, 4096], rng=0, repeats=3
        )
        conv = convergence_from_sweep(sweep)
        # Both AMS estimators converge within the sweep on mf2.
        assert conv["tug-of-war"] is not None
        assert conv["sample-count"] is not None

    def test_path_dataset_separates_algorithms(self):
        # Section 3.2: on `path`, tug-of-war converges with far fewer
        # words than sample-count.
        from repro.experiments.harness import estimate_once

        values = load_dataset("path", rng=0)
        exact = self_join_size(values)
        tw_errs = [
            abs(estimate_once("tug-of-war", values, 64, rng=seed) - exact) / exact
            for seed in range(5)
        ]
        sc_errs = [
            abs(estimate_once("sample-count", values, 64, rng=seed) - exact) / exact
            for seed in range(5)
        ]
        assert np.median(tw_errs) < np.median(sc_errs)
