"""The general F_k kinds: fk_moments and f0 as first-class citizens.

Tentpole requirement of ISSUE 8: the engine's kind registry grows
beyond F_2.  ``fk_moments`` estimates one fixed frequency moment
F_k = sum f_v^k via a roots-of-unity linear sketch (median of s2
means of s1 estimators); ``f0`` is a deletion-safe linear-counting
distinct counter.  Both must pass the same bars as the original
kinds: bit-identical vectorized vs canonical ingest, exact linear
merges, registry round-trips, and windowed merge-on-query equality —
plus a typed :class:`UnsupportedMomentError` (a ``ValueError``) for
moments the sketch was not built for.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distinct import DistinctCountSketch
from repro.core.fkmoments import FkMomentSketch
from repro.core.moments import UnsupportedMomentError
from repro.engine import dump_sketch, loads_sketch, dumps_sketch, sketch_kinds
from repro.engine.registry import sketch_descriptions
from repro.store import SketchSpec, WindowedSketchStore


def exact_moment(values, k: int) -> float:
    counts = np.bincount(np.asarray(values, dtype=np.int64))
    return float(np.sum(counts.astype(np.float64) ** k))


FK_FACTORY = {
    "fk_moments": lambda seed=7: FkMomentSketch(k=3, s1=16, s2=3, seed=seed),
    "f0": lambda seed=7: DistinctCountSketch(16, 3, seed=seed),
}

values_strategy = st.lists(
    st.integers(min_value=0, max_value=50), min_size=0, max_size=120
)


class TestUnsupportedMoment:
    def test_bad_order_rejected_at_construction(self):
        with pytest.raises(UnsupportedMomentError):
            FkMomentSketch(k=0, s1=16, s2=3, seed=1)
        with pytest.raises(UnsupportedMomentError):
            FkMomentSketch(k=-2, s1=16, s2=3, seed=1)

    def test_wrong_order_query_rejected(self):
        sketch = FkMomentSketch(k=3, s1=16, s2=3, seed=1)
        sketch.update_from_stream(np.arange(10))
        with pytest.raises(UnsupportedMomentError):
            sketch.moment_estimate(2)
        with pytest.raises(UnsupportedMomentError):
            sketch.moment_estimate(0)

    def test_is_a_value_error(self):
        """The CLI's exit-2 contract catches ValueError; the typed
        moment error must ride that path."""
        assert issubclass(UnsupportedMomentError, ValueError)

    def test_first_moment_is_exact(self):
        sketch = FkMomentSketch(k=3, s1=16, s2=3, seed=1)
        sketch.update_from_stream([1, 1, 2, 9])
        sketch.delete(1)
        assert sketch.moment_estimate(1) == 3.0


class TestRegistry:
    @pytest.mark.parametrize("kind", sorted(FK_FACTORY))
    def test_registered(self, kind):
        assert kind in sketch_kinds()

    @pytest.mark.parametrize("kind", sorted(FK_FACTORY))
    def test_description_published(self, kind):
        desc = sketch_descriptions()[kind]
        assert isinstance(desc, str) and desc

    @pytest.mark.parametrize("kind", sorted(FK_FACTORY))
    def test_json_round_trip_then_continue_bit_identical(self, kind):
        rng = np.random.default_rng(5)
        prefix = rng.integers(0, 60, size=400)
        suffix = rng.integers(0, 60, size=400)
        original = FK_FACTORY[kind]()
        original.update_from_stream(prefix)
        restored = loads_sketch(dumps_sketch(original))
        assert dump_sketch(restored) == dump_sketch(original)
        original.update_from_stream(suffix)
        restored.update_from_stream(suffix)
        assert dump_sketch(restored) == dump_sketch(original)
        assert restored.estimate() == original.estimate()


class TestVectorizedVsCanonical:
    """Property tests: every bulk path equals the one-at-a-time path."""

    @pytest.mark.parametrize("kind", sorted(FK_FACTORY))
    @given(values=values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_stream_equals_inserts(self, kind, values):
        bulk = FK_FACTORY[kind]()
        loop = FK_FACTORY[kind]()
        bulk.update_from_stream(np.asarray(values, dtype=np.int64))
        for v in values:
            loop.insert(v)
        assert dump_sketch(bulk) == dump_sketch(loop)

    @pytest.mark.parametrize("kind", sorted(FK_FACTORY))
    @given(values=values_strategy, counts=st.data())
    @settings(max_examples=40, deadline=None)
    def test_frequencies_equal_updates(self, kind, values, counts):
        distinct = sorted(set(values))
        signed = counts.draw(
            st.lists(
                st.integers(min_value=-3, max_value=3).filter(bool),
                min_size=len(distinct),
                max_size=len(distinct),
            )
        )
        bulk = FK_FACTORY[kind]()
        loop = FK_FACTORY[kind]()
        if distinct:
            # Pre-load count 3 per value so negative deltas stay legal
            # (the kinds refuse batches that drive the multiset negative).
            base_vals = np.asarray(distinct, dtype=np.int64)
            base_counts = np.full(len(distinct), 3, dtype=np.int64)
            bulk.update_from_frequencies(base_vals, base_counts)
            loop.update_from_frequencies(base_vals, base_counts)
            bulk.update_from_frequencies(
                base_vals, np.asarray(signed, dtype=np.int64)
            )
        for v, c in zip(distinct, signed):
            loop.update(v, c)
        assert dump_sketch(bulk) == dump_sketch(loop)

    @pytest.mark.parametrize("kind", sorted(FK_FACTORY))
    @given(values=values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_deletions_cancel_exactly(self, kind, values):
        sketch = FK_FACTORY[kind]()
        empty = FK_FACTORY[kind]()
        sketch.update_from_stream(np.asarray(values, dtype=np.int64))
        for v in values:
            sketch.delete(v)
        assert np.array_equal(sketch.counters, empty.counters)
        assert sketch.estimate() == 0.0


class TestMerge:
    @pytest.mark.parametrize("kind", sorted(FK_FACTORY))
    def test_merge_equals_union_stream(self, kind):
        rng = np.random.default_rng(11)
        left_vals = rng.integers(0, 80, size=600)
        right_vals = rng.integers(0, 80, size=600)
        left = FK_FACTORY[kind]()
        right = FK_FACTORY[kind]()
        union = FK_FACTORY[kind]()
        left.update_from_stream(left_vals)
        right.update_from_stream(right_vals)
        union.update_from_stream(np.concatenate([left_vals, right_vals]))
        merged = left.merge(right)
        assert dump_sketch(merged) == dump_sketch(union)

    @pytest.mark.parametrize("kind", sorted(FK_FACTORY))
    def test_mismatched_seed_merge_refused(self, kind):
        with pytest.raises(ValueError):
            FK_FACTORY[kind](seed=1).merge(FK_FACTORY[kind](seed=2))


class TestWindowedStore:
    """Merge-on-query over time buckets is bit-identical to monolithic."""

    SPECS = {
        "fk_moments": SketchSpec(
            "fk_moments", {"k": 3, "s1": 16, "s2": 3, "seed": 7}
        ),
        "f0": SketchSpec("f0", {"s1": 16, "s2": 3, "seed": 7}),
    }

    @pytest.mark.parametrize("kind", sorted(SPECS))
    def test_window_query_equals_monolithic(self, kind):
        spec = self.SPECS[kind]
        rng = np.random.default_rng(3)
        n = 2000
        timestamps = rng.integers(0, 160, size=n).astype(np.int64)
        values = rng.integers(0, 90, size=n).astype(np.int64)
        store = WindowedSketchStore(spec, bucket_width=10)
        store.ingest(timestamps, values)
        for t0, t1 in ((0, 160), (0, 40), (50, 120)):
            mono = spec.build()
            sel = (timestamps >= t0) & (timestamps < t1)
            mono.update_from_stream(values[sel])
            window = store.query(t0, t1)
            assert np.array_equal(window.counters, mono.counters)
            assert window.estimate() == mono.estimate()

    def test_fk_accuracy_sanity_in_store(self):
        """A wide fk_moments store window lands near the true F_3."""
        spec = SketchSpec(
            "fk_moments", {"k": 3, "s1": 256, "s2": 5, "seed": 0}
        )
        rng = np.random.default_rng(8)
        values = (rng.zipf(1.4, size=4000) % 300).astype(np.int64)
        timestamps = rng.integers(0, 100, size=4000).astype(np.int64)
        store = WindowedSketchStore(spec, bucket_width=10)
        store.ingest(timestamps, values)
        truth = exact_moment(values, 3)
        assert abs(store.estimate(0, 100) - truth) <= 0.5 * truth

    def test_f0_deletions_keep_distinct_count_honest(self):
        spec = SketchSpec("f0", {"s1": 256, "s2": 5, "seed": 0})
        store = WindowedSketchStore(spec, bucket_width=10)
        values = np.arange(200, dtype=np.int64)
        timestamps = np.zeros(200, dtype=np.int64)
        store.ingest(timestamps, values)
        # Delete half of them at the same timestamps.
        store.ingest(
            timestamps[:100], values[:100],
            counts=np.full(100, -1, dtype=np.int64),
        )
        estimate = store.estimate(0, 10)
        assert abs(estimate - 100.0) <= 30.0
