"""Tests for the stream partitioners (repro.engine.partition).

The partitioner contract underpins both the in-process sharded build
and the cluster router, so its invariants are checked exhaustively:
every element lands on exactly one shard, assignment is a pure
function of ``(value, seed, num_shards)`` for the hash policy and of
position for the contiguous policy, and parallel arrays sliced with
one assignment stay aligned.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.partition import (
    ContiguousPartitioner,
    HashPartitioner,
    partitioner_from_dict,
    stable_hash64,
)
from repro.engine.sharded import shard_stream

values_list = st.lists(
    st.integers(min_value=-(2**40), max_value=2**40), min_size=0, max_size=200
)


class TestContiguousPartitioner:
    def test_matches_array_split(self, rng):
        arr = rng.integers(0, 1000, size=157)
        for k in (1, 2, 3, 5, 8, 157, 200):
            pieces = [
                arr[idx] for idx in ContiguousPartitioner(k).split(arr)
            ]
            expected = np.array_split(arr, k)
            assert len(pieces) == len(expected)
            for got, want in zip(pieces, expected):
                assert np.array_equal(got, want)

    def test_shard_stream_unchanged_by_refactor(self, rng):
        # shard_stream is now a thin wrapper; its observable behaviour
        # (np.array_split semantics) must not have moved.
        arr = rng.integers(0, 100, size=47)
        pieces = shard_stream(arr, 5)
        assert [p.size for p in pieces] == [10, 10, 9, 9, 9]
        assert np.array_equal(np.concatenate(pieces), arr)

    def test_assign_agrees_with_split(self, rng):
        arr = rng.integers(0, 50, size=83)
        part = ContiguousPartitioner(4)
        assigned = part.assign(arr)
        for shard, idx in enumerate(part.split(arr)):
            assert np.all(assigned[idx] == shard)

    def test_rejects_bad_shapes_and_counts(self):
        with pytest.raises(ValueError, match="num_shards"):
            ContiguousPartitioner(0)
        with pytest.raises(ValueError, match="1-D"):
            ContiguousPartitioner(2).split(np.zeros((2, 2), dtype=np.int64))


class TestHashPartitioner:
    def test_all_occurrences_of_a_value_share_a_shard(self, rng):
        values = rng.integers(0, 40, size=3000)
        part = HashPartitioner(5, seed=3)
        assigned = part.assign(values)
        for v in np.unique(values):
            shards = np.unique(assigned[values == v])
            assert shards.size == 1

    def test_deterministic_across_instances(self, rng):
        values = rng.integers(-(2**50), 2**50, size=500)
        a = HashPartitioner(7, seed=9).assign(values)
        b = HashPartitioner(7, seed=9).assign(values)
        assert np.array_equal(a, b)

    def test_seed_changes_assignment(self, rng):
        values = rng.integers(0, 10_000, size=2000)
        a = HashPartitioner(8, seed=0).assign(values)
        b = HashPartitioner(8, seed=1).assign(values)
        assert not np.array_equal(a, b)

    def test_spreads_roughly_uniformly(self, rng):
        values = np.arange(80_000, dtype=np.int64)  # worst case: sequential
        counts = np.bincount(
            HashPartitioner(8, seed=0).assign(values), minlength=8
        )
        assert counts.min() > 0.8 * values.size / 8
        assert counts.max() < 1.2 * values.size / 8

    def test_stable_hash64_is_documented_mix(self):
        # Pin a few outputs: the hash routes persisted cluster data, so
        # silently changing it would orphan every shard's holdings.
        got = stable_hash64(np.array([0, 1, -1, 2**40], dtype=np.int64), seed=0)
        again = stable_hash64(np.array([0, 1, -1, 2**40], dtype=np.int64), seed=0)
        assert np.array_equal(got, again)
        assert got.dtype == np.uint64
        assert len(set(got.tolist())) == 4  # no trivial collisions

    def test_negative_values_partition_consistently(self):
        values = np.array([-5, -5, -5, 7, 7], dtype=np.int64)
        assigned = HashPartitioner(3, seed=2).assign(values)
        assert assigned[0] == assigned[1] == assigned[2]
        assert assigned[3] == assigned[4]

    @given(values=values_list, k=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_split_is_a_partition(self, values, k, seed):
        arr = np.asarray(values, dtype=np.int64)
        parts = HashPartitioner(k, seed=seed).split(arr)
        assert len(parts) == k
        together = np.concatenate(parts) if arr.size else np.empty(0, np.int64)
        assert np.array_equal(np.sort(together), np.arange(arr.size))


class TestSerialization:
    def test_round_trip(self):
        for part in (ContiguousPartitioner(3), HashPartitioner(5, seed=17)):
            rebuilt = partitioner_from_dict(part.to_dict())
            assert type(rebuilt) is type(part)
            assert rebuilt.num_shards == part.num_shards
        assert partitioner_from_dict(
            HashPartitioner(5, seed=17).to_dict()
        ).seed == 17

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown partitioner policy"):
            partitioner_from_dict({"policy": "roundrobin", "num_shards": 2})
