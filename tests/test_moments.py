"""Unit tests for general frequency moments (core.moments)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.moments import (
    FrequencyMomentTracker,
    exact_moment,
    fk_estimate_offline,
    fk_sample_size_bound,
)
from repro.core.samplecount import sample_count_estimate_offline


class TestExactMoment:
    def test_f0_distinct(self):
        assert exact_moment([1, 1, 2, 9], 0) == 3.0

    def test_f1_length(self):
        assert exact_moment([1, 1, 2, 9], 1) == 4.0

    def test_f2_is_self_join(self, small_stream):
        from repro.core.frequency import self_join_size

        assert exact_moment(small_stream, 2) == float(self_join_size(small_stream))

    def test_f3_manual(self):
        # freqs 2, 1 -> 8 + 1 = 9.
        assert exact_moment([5, 5, 7], 3) == 9.0

    def test_f_infinity(self):
        assert exact_moment([1, 1, 1, 2], None) == 3.0

    def test_empty_stream(self):
        assert exact_moment([], 2) == 0.0
        assert exact_moment([], None) == 0.0

    def test_rejects_negative_order(self):
        with pytest.raises(ValueError):
            exact_moment([1], -1)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            exact_moment(np.zeros((2, 2), dtype=np.int64), 2)


class TestSampleSizeBound:
    def test_k2_is_sqrt_t(self):
        assert fk_sample_size_bound(2, 10_000, 1.0) == pytest.approx(200.0)

    def test_grows_with_k(self):
        assert fk_sample_size_bound(3, 1000, 0.5) > fk_sample_size_bound(2, 1000, 0.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            fk_sample_size_bound(0, 10, 0.5)
        with pytest.raises(ValueError):
            fk_sample_size_bound(2, 0, 0.5)
        with pytest.raises(ValueError):
            fk_sample_size_bound(2, 10, 0.0)


class TestOfflineFk:
    def test_k2_matches_sample_count(self, small_stream):
        # Same rng seed -> identical positions -> identical estimates.
        a = fk_estimate_offline(small_stream, 2, 64, 5, rng=9)
        b = sample_count_estimate_offline(small_stream, 64, 5, rng=9)
        assert a == pytest.approx(b)

    def test_k1_is_exactly_n(self, small_stream):
        # X = n(r - (r-1)) = n for every slot.
        est = fk_estimate_offline(small_stream, 1, 16, 2, rng=0)
        assert est == pytest.approx(float(small_stream.size))

    def test_all_distinct_any_k_exact(self):
        # r = 1 always -> X = n(1 - 0) = n = F_k for all-distinct data.
        stream = np.arange(400)
        for k in (1, 2, 3, 4):
            assert fk_estimate_offline(stream, k, 32, 2, rng=1) == pytest.approx(400.0)

    def test_f3_unbiased_over_seeds(self):
        stream = np.array([1] * 12 + [2] * 5 + list(range(10, 60)), dtype=np.int64)
        exact = exact_moment(stream, 3)
        ests = [fk_estimate_offline(stream, 3, 1, 1, rng=s) for s in range(3000)]
        assert np.mean(ests) == pytest.approx(exact, rel=0.15)

    def test_f3_accuracy_with_large_sample(self, small_stream):
        exact = exact_moment(small_stream, 3)
        est = fk_estimate_offline(small_stream, 3, 2000, 5, rng=3)
        assert est == pytest.approx(exact, rel=0.5)

    def test_empty_stream(self):
        assert fk_estimate_offline(np.array([], dtype=np.int64), 2, 4, 1) == 0.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            fk_estimate_offline([1], 0, 4, 1)


class TestFrequencyMomentTracker:
    def make(self, stream, s1=256, s2=5, seed=0):
        arr = np.asarray(stream, dtype=np.int64)
        tr = FrequencyMomentTracker(s1=s1, s2=s2, seed=seed, initial_range=arr.size)
        tr.update_from_stream(arr)
        return tr

    def test_is_a_sample_count_sketch(self, small_stream):
        tr = self.make(small_stream)
        # F2 query equals the inherited estimate().
        assert tr.moment_estimate(2) == pytest.approx(tr.estimate())
        tr.check_invariants()

    def test_f1_exact(self, small_stream):
        tr = self.make(small_stream)
        assert tr.moment_estimate(1) == pytest.approx(float(small_stream.size))

    def test_f3_reasonable(self, small_stream):
        tr = self.make(small_stream, s1=600)
        exact = exact_moment(small_stream, 3)
        assert tr.moment_estimate(3) == pytest.approx(exact, rel=0.6)

    def test_empty(self):
        tr = FrequencyMomentTracker(s1=4, seed=0)
        assert tr.moment_estimate(3) == 0.0

    def test_deletions_supported(self, rng):
        tr = FrequencyMomentTracker(s1=64, s2=2, seed=1, initial_range=200)
        live = []
        for v in rng.integers(0, 15, size=1000).tolist():
            tr.insert(int(v))
            live.append(int(v))
        for _ in range(200):
            tr.delete(live.pop())
        tr.check_invariants()
        assert tr.moment_estimate(1) == pytest.approx(float(len(live)))

    def test_rejects_bad_order(self, small_stream):
        tr = self.make(small_stream, s1=8, s2=1)
        with pytest.raises(ValueError):
            tr.moment_estimate(0)
