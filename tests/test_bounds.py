"""Unit tests for the analytic facts and bounds (core.bounds)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bounds
from repro.core.frequency import join_size, self_join_size


class TestFact11:
    def test_formula(self):
        assert bounds.join_size_upper_bound(10, 30) == 20.0

    def test_holds_on_random_relations(self, rng):
        for _ in range(20):
            a = rng.integers(0, 25, size=400)
            b = rng.integers(0, 25, size=400)
            assert join_size(a, b) <= bounds.join_size_upper_bound(
                self_join_size(a), self_join_size(b)
            )

    def test_tight_for_identical_relations(self, rng):
        a = rng.integers(0, 25, size=300)
        assert join_size(a, a) == bounds.join_size_upper_bound(
            self_join_size(a), self_join_size(a)
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bounds.join_size_upper_bound(-1, 0)


class TestFact12:
    def test_roundtrip(self):
        n, a = 1000, 1.7
        sj = bounds.exponential_sj(n, a)
        assert bounds.exponential_parameter_from_sj(n, sj) == pytest.approx(a)

    def test_sj_formula(self):
        # SJ = n^2 (a-1)/(a+1); for a = 3: n^2 / 2.
        assert bounds.exponential_sj(10, 3.0) == pytest.approx(50.0)

    def test_sj_matches_sampled_distribution(self):
        # Draw a large exponential-frequency stream and compare SJ.
        n, a = 200_000, 2.0
        ranks = np.arange(1, 40)
        freqs = n * (a - 1.0) * a ** (-ranks.astype(np.float64))
        sj_analytic = float(np.sum(freqs**2))
        assert sj_analytic == pytest.approx(bounds.exponential_sj(n, a), rel=0.01)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            bounds.exponential_sj(10, 1.0)
        with pytest.raises(ValueError):
            bounds.exponential_parameter_from_sj(10, 0.0)
        with pytest.raises(ValueError):
            bounds.exponential_parameter_from_sj(10, 101.0)
        with pytest.raises(ValueError):
            bounds.exponential_parameter_from_sj(0, 1.0)


class TestErrorBounds:
    def test_tug_of_war(self):
        assert bounds.tug_of_war_error_bound(16) == pytest.approx(1.0)

    def test_sample_count_scales_with_domain(self):
        # 4 t^{1/4} / sqrt(s1): at t = 10^4 and s1 = 1600 -> 1.0.
        assert bounds.sample_count_error_bound(1600, 10_000) == pytest.approx(1.0)

    def test_sample_count_worse_than_tug_of_war(self):
        for t in (10, 1000, 100_000):
            assert bounds.sample_count_error_bound(64, t) >= bounds.tug_of_war_error_bound(
                64
            )

    def test_success_probability(self):
        assert bounds.success_probability(2) == pytest.approx(0.5)

    def test_naive_sampling_required_size(self):
        assert bounds.naive_sampling_required_size(10_000) == pytest.approx(100.0)

    def test_reject_bad_inputs(self):
        with pytest.raises(ValueError):
            bounds.tug_of_war_error_bound(0)
        with pytest.raises(ValueError):
            bounds.sample_count_error_bound(1, 0)
        with pytest.raises(ValueError):
            bounds.success_probability(0)
        with pytest.raises(ValueError):
            bounds.naive_sampling_required_size(-1)


class TestSignatureBounds:
    def test_sample_signature_words(self):
        assert bounds.sample_signature_words(100, 1000, c=3.0) == pytest.approx(30.0)

    def test_lower_bound_bits(self):
        # (n - sqrt(B))^2 / B with n = 100, B = 400: (80)^2/400 = 16.
        assert bounds.signature_lower_bound_bits(100, 400) == pytest.approx(16.0)

    def test_upper_and_lower_bounds_consistent(self):
        # The sampling upper bound (in words) must be at least the
        # lower bound (in bits) divided by a word size, for all valid B.
        n = 10_000
        for b in (n, 10 * n, n * n // 4):
            upper_words = bounds.sample_signature_words(n, b)
            lower_bits = bounds.signature_lower_bound_bits(n, b)
            assert upper_words * 32 >= lower_bits

    def test_ktw_signature_words(self):
        assert bounds.ktw_signature_words(100, 200, 10.0, c=2.0) == pytest.approx(400.0)

    def test_sanity_bound_validation(self):
        with pytest.raises(ValueError, match="sanity bound"):
            bounds.sample_signature_words(100, 50)
        with pytest.raises(ValueError, match="sanity bound"):
            bounds.signature_lower_bound_bits(100, 100 * 100)

    def test_ktw_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bounds.ktw_signature_words(-1, 1, 1)
        with pytest.raises(ValueError):
            bounds.ktw_signature_words(1, 1, 0)


class TestSection44:
    def test_crossover_condition(self):
        n = 1000
        b = 10_000
        threshold = n * np.sqrt(b)
        assert bounds.ktw_beats_sampling(n, threshold * 0.9, b)
        assert not bounds.ktw_beats_sampling(n, threshold * 1.1, b)

    def test_break_even_factor_paper_values(self):
        # Section 4.4's quoted factors from Table 1 (n, SJ) pairs.
        cases = {
            "selfsimilar": (120_000, 3.41e9, 6700),
            "zipf1.5": (120_000, 2.59e9, 4000),
            "poisson": (120_000, 9.12e8, 500),
            "zipf1.0": (500_000, 4.30e9, 150),
            "brown2": (855_043, 5.84e9, 50),
        }
        for name, (n, sj, factor) in cases.items():
            got = bounds.ktw_break_even_sanity_bound(n, sj)
            assert got == pytest.approx(factor, rel=0.15), name

    def test_advantage_paper_values(self):
        # "the advantage is about 1000, 20, and 150" for uniform, mf3,
        # path at B = n.
        cases = {
            "uniform": (1_000_000, 3.15e7, 1000),
            "mf3": (19_968, 6.19e5, 20),
            "path": (40_800, 6.80e5, 150),
        }
        for name, (n, sj, adv) in cases.items():
            got = bounds.ktw_advantage(n, sj, float(n))
            assert got == pytest.approx(adv, rel=0.2), name

    def test_break_even_below_one_means_win_at_n(self):
        # uniform: factor << 1, so k-TW wins already at B = n.
        assert bounds.ktw_break_even_sanity_bound(1_000_000, 3.15e7) < 1.0

    def test_advantage_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bounds.ktw_advantage(100, 0.0, 100.0)
        with pytest.raises(ValueError):
            bounds.ktw_break_even_sanity_bound(0, 1.0)


class TestLemma44:
    def test_formula(self):
        assert bounds.ktw_join_error_bound(50.0, 200.0, 100) == pytest.approx(
            np.sqrt(2.0 * 50.0 * 200.0 / 100)
        )

    def test_zero_self_join_gives_zero_error(self):
        assert bounds.ktw_join_error_bound(0.0, 1000.0, 64) == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="non-negative"):
            bounds.ktw_join_error_bound(-1.0, 1.0, 8)
        with pytest.raises(ValueError, match="k must be"):
            bounds.ktw_join_error_bound(1.0, 1.0, 0)

    def test_matches_signature_error_bound(self, rng):
        # The shared formula is the one the signature family reports.
        from repro.core.join import JoinSignatureFamily

        family = JoinSignatureFamily(128, seed=0)
        sig = family.signature()
        sig.update_from_stream(rng.integers(0, 20, size=500))
        assert sig.error_bound(10.0, 20.0) == pytest.approx(
            bounds.ktw_join_error_bound(10.0, 20.0, 128)
        )
