"""Tests for figure/table runners and the join / lower-bound studies.

These run at small scale; the full-scale reproductions live in
benchmarks/.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figures, joins, lowerbounds, tables


class TestFigures:
    def test_figure_dataset_map_complete(self):
        assert sorted(figures.FIGURE_DATASETS) == list(range(2, 15))

    def test_run_figure_small_scale(self):
        res = figures.run_figure("poisson", scale=0.02, max_log2_s=6, seed=0)
        assert res.dataset == "poisson"
        assert len(res.points) == 3 * 7

    def test_figure_dispatch(self):
        res = figures.figure(8, scale=0.02, max_log2_s=4, seed=0)
        assert res.dataset == "poisson"

    def test_figure_dispatch_invalid(self):
        with pytest.raises(KeyError, match="not an accuracy sweep"):
            figures.figure(15)
        with pytest.raises(KeyError):
            figures.figure(1)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            figures.run_figure("nope")

    def test_figure15_structure(self):
        out = figures.figure15(estimators=64, scale=0.05, seed=0)
        x = out["sorted_estimators"]
        assert x.size == 64
        assert np.all(np.diff(x) >= 0)  # sorted
        assert out["actual"] > 0
        assert out["median"] == pytest.approx(float(np.median(x)))

    def test_figure15_median_near_actual(self):
        out = figures.figure15(estimators=512, scale=0.05, seed=1)
        assert out["median"] == pytest.approx(out["actual"], rel=1.0)

    def test_figure15_spread_is_wide(self):
        # The paper's point: individual estimators are spread, not
        # clustered at the actual value.
        out = figures.figure15(estimators=512, scale=0.05, seed=2)
        x = out["sorted_estimators"]
        assert x.max() > 2.0 * out["actual"] or x.min() < 0.2 * out["actual"]

    def test_figure15_format(self):
        out = figures.figure15(estimators=32, scale=0.05, seed=0)
        text = figures.format_figure15(out)
        assert "Figure 15" in text

    def test_figure15_rejects_bad_count(self):
        with pytest.raises(ValueError):
            figures.figure15(estimators=0)


class TestTables:
    def test_table1_rows(self):
        rows = tables.table1(seed=0, scale=0.02, datasets=["poisson", "path"])
        assert [r.name for r in rows] == ["poisson", "path"]
        for r in rows:
            assert r.measured_length > 0
            assert r.measured_self_join > 0

    def test_table1_format(self):
        rows = tables.table1(seed=0, scale=0.02, datasets=["mf3"])
        text = tables.format_table1(rows)
        assert "mf3" in text and "Table 1" in text

    def test_convergence_table(self):
        table = tables.convergence_table(
            datasets=["poisson"], scale=0.05, max_log2_s=10, seed=0, repeats=3
        )
        assert "poisson" in table
        per_algo = table["poisson"]
        assert set(per_algo) == {"tug-of-war", "sample-count", "naive-sampling"}

    def test_convergence_format(self):
        text = tables.format_convergence_table(
            {"x": {"tug-of-war": 16, "sample-count": None, "naive-sampling": 64}}
        )
        assert "not conv." in text and "16" in text

    def test_section44_paper_values(self):
        rows = tables.table_section44(use_paper_values=True)
        by_name = {r.name: r for r in rows}
        assert by_name["selfsimilar"].break_even_factor == pytest.approx(6730, rel=0.1)
        assert by_name["uniform"].advantage_at_n == pytest.approx(1008, rel=0.1)
        assert by_name["path"].advantage_at_n == pytest.approx(147, rel=0.1)

    def test_section44_measured(self):
        rows = tables.table_section44(
            seed=0, scale=0.05, datasets=["poisson", "uniform"]
        )
        assert len(rows) == 2
        for r in rows:
            assert r.break_even_factor > 0
            assert r.advantage_at_n > 0

    def test_section44_format(self):
        rows = tables.table_section44(use_paper_values=True, datasets=["mf2"])
        text = tables.format_table_section44(rows)
        assert "mf2" in text and "break-even" in text


class TestJoinExperiments:
    def test_make_relation_pair(self):
        left, right = joins.make_relation_pair("zipf1.0", n=5000, overlap=0.5, seed=0)
        assert left.size > 0 and right.size > 0

    def test_overlap_zero_no_payload_join(self):
        left, right = joins.make_relation_pair("uniform", n=5000, overlap=0.0, seed=1)
        from repro.core.frequency import join_size

        assert join_size(left, right) == 0

    def test_overlap_validation(self):
        with pytest.raises(ValueError):
            joins.make_relation_pair(overlap=1.5)
        with pytest.raises(KeyError):
            joins.make_relation_pair("nope")

    def test_join_accuracy_sweep(self, rng):
        left = rng.integers(0, 40, size=3000).astype(np.int64)
        right = rng.integers(0, 40, size=3000).astype(np.int64)
        out = joins.join_accuracy_sweep(left, right, budgets=[64, 512], seed=0)
        assert out["exact_join"] > 0
        schemes = {p.scheme for p in out["points"]}
        assert schemes == {"k-TW", "sample"}
        text = joins.format_join_sweep(out)
        assert "k-TW" in text

    def test_error_shrinks_with_budget(self, rng):
        left = rng.integers(0, 40, size=4000).astype(np.int64)
        right = rng.integers(0, 40, size=4000).astype(np.int64)
        out = joins.join_accuracy_sweep(
            left, right, budgets=[16, 2048], seed=1, repeats=5
        )
        ktw = {p.memory_words: p.relative_error for p in out["points"] if p.scheme == "k-TW"}
        assert ktw[2048] <= ktw[16] + 0.05

    def test_ktw_error_vs_bound(self, rng):
        left = rng.integers(0, 30, size=2000).astype(np.int64)
        right = rng.integers(0, 30, size=2000).astype(np.int64)
        out = joins.ktw_error_vs_bound(left, right, k=64, trials=20, seed=0)
        # Lemma 4.4: RMS error at or below the bound (sampling noise margin).
        assert out["ratio"] <= 1.3

    def test_sweep_validates_budgets(self, rng):
        a = rng.integers(0, 5, size=10).astype(np.int64)
        with pytest.raises(ValueError):
            joins.join_accuracy_sweep(a, a, budgets=[0])

    def test_bound_validates(self, rng):
        a = rng.integers(0, 5, size=10).astype(np.int64)
        with pytest.raises(ValueError):
            joins.ktw_error_vs_bound(a, a, k=0)


class TestLowerBoundDemos:
    def test_lemma23_demo(self):
        out = lowerbounds.lemma23_demo(n=4000, trials=40, seed=0)
        # R1's estimate is essentially exact (all-distinct sample).
        assert out["median_estimate_r1"] == pytest.approx(out["sj_r1"], rel=0.05)
        # R2 is typically reported near n — a factor ~2 below 2n.
        assert out["factor2_failure_rate"] >= 0.5

    def test_lemma23_validates(self):
        with pytest.raises(ValueError):
            lowerbounds.lemma23_demo(trials=0)

    def test_theorem43_demo_small_signature_fails(self):
        out = lowerbounds.theorem43_demo(k=6, c=12, trials=30, seed=0)
        # Sub-lower-bound signatures misclassify a constant fraction.
        assert out["misclassification_rate"] >= 0.15

    def test_theorem43_demo_large_signature_succeeds(self):
        out = lowerbounds.theorem43_demo(
            k=6, c=12, signature_words=10_000, trials=30, seed=1
        )
        # With p = 1 (full relation stored) the join size is exact.
        assert out["misclassification_rate"] == 0.0

    def test_theorem43_validates(self):
        with pytest.raises(ValueError):
            lowerbounds.theorem43_demo(trials=0)
