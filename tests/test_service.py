"""Tests for the concurrent estimation service (repro.service).

Covers the three service guarantees — snapshot isolation, precise
merged-window cache invalidation, single-flight coalescing — plus the
line-delimited JSON server, both in-process and over a real socket.
The headline test interleaves ingest/query/compact from many threads
and demands estimates bit-identical to a serial replay of the same
operations (linearity of the tug-of-war counters makes the comparison
exact, not approximate).
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.service import (
    CatalogService,
    SingleFlightCache,
    SketchService,
    SketchServiceServer,
    handle_request,
)
from repro.service.service import dirty_intervals
from repro.store import SketchSpec, WindowAlignmentError, WindowedSketchStore
from repro.relational.windowed import WindowedSignatureCatalog


def make_store(**kwargs) -> WindowedSketchStore:
    spec = SketchSpec("tugofwar", {"s1": 32, "s2": 3, "seed": 7})
    return WindowedSketchStore(spec, bucket_width=10, **kwargs)


def make_service(**kwargs) -> SketchService:
    return SketchService(make_store(**kwargs))


class TestServiceBasics:
    def test_rejects_non_store(self):
        with pytest.raises(TypeError, match="WindowedSketchStore"):
            SketchService(object())

    def test_estimate_matches_plain_store(self, rng):
        ts = rng.integers(0, 100, size=2000)
        values = rng.integers(0, 50, size=2000)
        service = make_service()
        service.ingest(ts, values)
        plain = make_store()
        plain.ingest(ts, values)
        for window in [(0, 100), (20, 60), (90, 100)]:
            assert service.estimate(*window) == plain.estimate(*window)

    def test_query_returns_detached_copy(self):
        service = make_service()
        service.ingest([1, 2, 3], [5, 6, 5])
        first = service.query(0, 10)
        reference = first.counters.copy()
        first.insert(99)  # must not corrupt the cached sketch
        assert np.array_equal(service.query(0, 10).counters, reference)

    def test_second_query_is_a_cache_hit(self):
        service = make_service()
        service.ingest([1, 2], [5, 6])
        service.estimate(0, 10)
        before = service.stats()
        service.estimate(0, 10)
        after = service.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_estimate_window_reports_resolved_bounds(self):
        service = make_service()
        service.ingest([5, 25], [1, 2])
        result = service.estimate_window(5, 25, align="outer")
        assert (result.t0, result.t1) == (0, 30)
        assert result.estimate == service.estimate(0, 30)

    def test_alignment_errors_propagate(self):
        service = make_service()
        service.ingest([5], [1])
        with pytest.raises(WindowAlignmentError):
            service.estimate(3, 10)
        with pytest.raises(ValueError, match="empty window"):
            service.estimate(10, 10)

    def test_snapshot_round_trips(self, rng):
        service = make_service()
        service.ingest(rng.integers(0, 50, size=500), rng.integers(0, 9, size=500))
        restored = WindowedSketchStore.from_dict(service.snapshot())
        assert restored.estimate(0, 50) == service.estimate(0, 50)

    def test_introspection_matches_store(self):
        service = make_service()
        service.ingest([1, 15], [3, 4])
        assert service.span_count == 2
        assert service.coverage == (0, 20)
        assert service.spans == [(0, 10), (10, 20)]
        assert service.bucket_width == 10 and service.origin == 0
        assert service.memory_words > 0


class TestCacheInvalidation:
    def test_out_of_order_ingest_invalidates_covered_window(self):
        service = make_service()
        service.ingest([1, 2, 15], [5, 6, 7])
        service.estimate(0, 20)  # cached
        # A late arrival routed into bucket 0 must drop the cached
        # entry; the next estimate is the fresh merge, bit-identical
        # to a store that saw all four events.
        service.ingest([3], [5])
        fresh = make_store()
        fresh.ingest([1, 2, 15, 3], [5, 6, 7, 5])
        assert service.estimate(0, 20) == fresh.estimate(0, 20)
        assert service.stats()["invalidated"] >= 1

    def test_untouched_windows_stay_cached(self):
        service = make_service()
        service.ingest([1, 2], [5, 6])
        service.estimate(0, 10)
        invalidated_before = service.stats()["invalidated"]
        service.ingest([55], [9])  # far-away bucket
        assert service.stats()["invalidated"] == invalidated_before
        before = service.stats()["hits"]
        service.estimate(0, 10)
        assert service.stats()["hits"] == before + 1

    def test_compact_invalidates_bridged_gap_windows(self):
        # Spans [0,10) and [50,60) with a cached (empty) window over
        # the gap: compaction bridges the gap into one span, after
        # which a strict query over the gap must raise exactly like a
        # fresh store — serving the stale cached answer would be wrong.
        service = make_service()
        service.ingest([5, 55], [1, 2])
        assert service.estimate(20, 40) == 0.0  # empty gap, cached
        service.compact()
        with pytest.raises(WindowAlignmentError, match="splits the compacted span"):
            service.estimate(20, 40)

    def test_evict_invalidates_forgotten_windows(self):
        service = make_service()
        service.ingest([5, 15, 25], [1, 2, 3])
        service.estimate(0, 10)
        assert service.evict(20) == 2
        fresh = make_store()
        fresh.ingest([25], [3])
        assert service.estimate(0, 30) == fresh.estimate(0, 30)

    def test_failed_ingest_still_invalidates(self):
        # A rejected batch may be partially applied; the cache must not
        # keep serving the pre-batch answer for touched buckets.
        spec = SketchSpec("frequency", {})
        service = SketchService(WindowedSketchStore(spec, bucket_width=10))
        service.ingest([1, 2], [5, 6])
        service.estimate(0, 10)
        with pytest.raises(ValueError, match="bucket span"):
            # valid insert into bucket 0 + unmatched delete in bucket 1
            service.ingest([3, 15], [5, 9], counts=[1, -1])
        restored = WindowedSketchStore.from_dict(service.snapshot())
        assert service.estimate(0, 10) == restored.estimate(0, 10)

    def test_dirty_intervals_cover_touched_compacted_span(self):
        store = make_store()
        store.ingest([5, 15, 25], [1, 2, 3])
        store.compact()
        before = store.bucket_spans
        store.ingest([7], [9])  # lands inside the compacted [0, 3) span
        assert dirty_intervals(store, before, [0]) == [(0, 3)]


class TestCoalescing:
    class SlowStore(WindowedSketchStore):
        """A store whose merges are slow enough to overlap reliably."""

        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.query_calls = 0

        def query_resolved(self, lo, hi):
            self.query_calls += 1
            time.sleep(0.05)
            return super().query_resolved(lo, hi)

    def test_concurrent_identical_queries_share_one_merge(self, rng):
        spec = SketchSpec("tugofwar", {"s1": 32, "s2": 3, "seed": 7})
        store = self.SlowStore(spec, bucket_width=10)
        store.ingest(rng.integers(0, 100, size=1000), rng.integers(0, 20, size=1000))
        service = SketchService(store)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results: list[float] = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            est = service.estimate(0, 100)
            with lock:
                results.append(est)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 1
        assert store.query_calls == 1  # single flight: one merge for all 8
        stats = service.stats()
        assert stats["coalesced"] == n_threads - 1

    def test_waiters_see_leader_errors(self):
        service = make_service()
        service.ingest([5], [1])
        n_threads = 4
        barrier = threading.Barrier(n_threads)
        failures: list[type] = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            try:
                service.estimate(3, 40)  # misaligned: every caller must see it
            except WindowAlignmentError:
                with lock:
                    failures.append(WindowAlignmentError)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(failures) == n_threads


class TestSingleFlightCacheUnit:
    def test_lru_eviction(self):
        cache = SingleFlightCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.get(key, lambda k=key: (k.upper(), [(None, 0, 1)]))
        assert len(cache) == 2
        calls = []
        cache.get("a", lambda: (calls.append(1) or "A2", [(None, 0, 1)]))
        assert calls == [1]  # "a" was evicted, so it recomputes

    def test_invalidate_by_tag_and_range(self):
        cache = SingleFlightCache()
        cache.get("x", lambda: (1, [("F", 0, 4)]))
        cache.get("y", lambda: (2, [("G", 0, 4)]))
        assert cache.invalidate("F", [(3, 10)]) == 1
        assert cache.get("y", lambda: (3, [("G", 0, 4)])) == 2  # still cached

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SingleFlightCache(max_entries=0)

    def test_stale_flight_replaced_by_fresh_leader(self):
        # A mutation mid-flight: waiters of the old flight get its
        # (uncached) result; the next arrival leads a replacement
        # flight whose result is cached again.
        cache = SingleFlightCache()
        started = threading.Event()
        release = threading.Event()

        def slow_compute():
            started.set()
            assert release.wait(5)
            return "old", [(None, 0, 1)]

        results = {}
        leader = threading.Thread(
            target=lambda: results.update(old=cache.get("k", slow_compute))
        )
        leader.start()
        assert started.wait(5)
        cache.invalidate(None, [(0, 1)])  # marks the in-flight leader stale
        assert cache.get("k", lambda: ("new", [(None, 0, 1)])) == "new"
        release.set()
        leader.join(timeout=5)
        assert results["old"] == "old"  # overlapping caller keeps its result
        # The replacement was cached; the stale result was not.
        assert cache.get("k", lambda: ("recomputed", [])) == "new"


class TestLinearizabilityStress:
    """Interleaved ingest/query/compact vs a serial replay, bit for bit."""

    N_INGEST_THREADS = 4
    BATCHES_PER_THREAD = 12
    BATCH = 64  # events per batch, all inside the hot region

    def _batches(self):
        """Deterministic per-thread batches over the hot region [0, 400)."""
        out = []
        for t in range(self.N_INGEST_THREADS):
            rng = np.random.default_rng(1000 + t)
            thread_batches = []
            for _ in range(self.BATCHES_PER_THREAD):
                ts = rng.integers(0, 400, size=self.BATCH)
                vals = rng.integers(0, 30, size=self.BATCH)
                thread_batches.append((ts, vals))
            out.append(thread_batches)
        return out

    def test_concurrent_history_matches_serial_replay(self):
        service = make_service()
        # Stable region far from the hot buckets, loaded before any
        # concurrency: its estimate is the snapshot-isolation canary.
        stable_rng = np.random.default_rng(5)
        stable_ts = stable_rng.integers(1000, 1100, size=500)
        stable_vals = stable_rng.integers(0, 30, size=500)
        service.ingest(stable_ts, stable_vals)
        stable_estimate = service.estimate(1000, 1100)

        batches = self._batches()
        errors: list[BaseException] = []
        stop = threading.Event()

        def ingester(thread_batches):
            try:
                for ts, vals in thread_batches:
                    service.ingest(ts, vals)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        def querier():
            try:
                while not stop.is_set():
                    # Canary: concurrent ingest into [0, 400) must never
                    # perturb the stable window — bit-identical always.
                    assert service.estimate(1000, 1100) == stable_estimate
                    # Atomicity: every batch lands whole, so the hot
                    # region's multiset size is always a multiple of
                    # the batch size (a torn batch would break this).
                    hot = service.query(0, 400, align="outer")
                    assert hot.n % self.BATCH == 0, f"torn batch visible: n={hot.n}"
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        def compactor():
            try:
                while not stop.is_set():
                    service.compact(before=200)
                    time.sleep(0.002)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        ingesters = [
            threading.Thread(target=ingester, args=(b,)) for b in batches
        ]
        others = [threading.Thread(target=querier) for _ in range(2)]
        others.append(threading.Thread(target=compactor))
        for t in others:
            t.start()
        for t in ingesters:
            t.start()
        for t in ingesters:
            t.join()
        stop.set()
        for t in others:
            t.join()
        assert not errors, errors

        # Serial replay: same batches, one thread, arbitrary fixed
        # order, same compaction horizon.  Linearity demands final
        # estimates bit-identical to the concurrent history.
        serial = make_store()
        serial.ingest(stable_ts, stable_vals)
        for thread_batches in batches:
            for ts, vals in thread_batches:
                serial.ingest(ts, vals)
        serial.compact(before=200)
        for window in [(0, 400), (0, 200), (200, 400), (0, 1100), (1000, 1100)]:
            assert service.estimate(*window) == serial.estimate(*window)
            assert np.array_equal(
                service.query(*window).counters, serial.query(*window).counters
            )

    def test_concurrent_out_of_order_ingest_invalidation(self):
        # Writers repeatedly ingest *into already-queried buckets*
        # (every batch is out of order w.r.t. the queries); each
        # post-join estimate must equal the serial replay exactly.
        service = make_service()
        batches = self._batches()
        barrier = threading.Barrier(self.N_INGEST_THREADS + 1)

        def ingester(thread_batches):
            barrier.wait()
            for ts, vals in thread_batches:
                service.ingest(ts, vals)

        def querier():
            barrier.wait()
            for _ in range(50):
                service.estimate(0, 400, align="outer")

        threads = [
            threading.Thread(target=ingester, args=(b,)) for b in batches
        ] + [threading.Thread(target=querier)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        serial = make_store()
        for thread_batches in batches:
            for ts, vals in thread_batches:
                serial.ingest(ts, vals)
        assert service.estimate(0, 400) == serial.estimate(0, 400)


class TestCatalogService:
    def make(self) -> CatalogService:
        return CatalogService(
            WindowedSignatureCatalog(k=64, bucket_width=10, s2=2, seed=3)
        )

    def test_rejects_non_catalog(self):
        with pytest.raises(TypeError, match="WindowedSignatureCatalog"):
            CatalogService(object())

    def test_join_estimate_matches_plain_catalog(self, rng):
        service = self.make()
        plain = WindowedSignatureCatalog(k=64, bucket_width=10, s2=2, seed=3)
        for cat in (service, plain):
            cat.register("F")
            cat.register("G")
        f_ts, f_vals = rng.integers(0, 50, size=400), rng.integers(0, 9, size=400)
        g_ts, g_vals = rng.integers(0, 50, size=400), rng.integers(0, 9, size=400)
        service.ingest("F", f_ts, f_vals)
        service.ingest("G", g_ts, g_vals)
        plain.ingest("F", f_ts, f_vals)
        plain.ingest("G", g_ts, g_vals)
        assert service.join_estimate("F", "G", 0, 50) == plain.join_estimate(
            "F", "G", 0, 50
        )
        assert service.self_join_estimate("F", 0, 50) == plain.self_join_estimate(
            "F", 0, 50
        )

    def test_key_is_symmetric(self):
        service = self.make()
        service.register("F")
        service.register("G")
        service.ingest("F", [1], [2])
        service.ingest("G", [1], [2])
        a = service.join_estimate("F", "G", 0, 10)
        b = service.join_estimate("G", "F", 0, 10)
        assert a == b
        assert service.stats()["hits"] == 1  # second order hit the same entry

    def test_ingest_invalidates_only_touched_relation(self):
        service = self.make()
        for name in ("F", "G", "H"):
            service.register(name)
            service.ingest(name, [1, 15], [2, 3])
        service.join_estimate("F", "G", 0, 10)
        service.self_join_estimate("H", 0, 10)
        invalidated = service.stats()["invalidated"]
        service.ingest("H", [5], [4])  # touches H only
        assert service.stats()["invalidated"] == invalidated + 1  # just H's entry
        hits = service.stats()["hits"]
        service.join_estimate("F", "G", 0, 10)  # untouched pair: still hot
        assert service.stats()["hits"] == hits + 1

    def test_drop_and_reregister_does_not_serve_stale(self):
        service = self.make()
        service.register("F")
        service.register("G")
        service.ingest("F", [1], [2])
        service.ingest("G", [1], [2])
        old = service.join_estimate("F", "G", 0, 10)
        service.drop("F")
        service.register("F")  # fresh, empty store
        assert service.join_estimate("F", "G", 0, 10) == 0.0
        assert old != 0.0

    def test_at_window_drives_the_optimizer(self, rng):
        from repro.relational import choose_join_order

        service = self.make()
        sizes = {}
        streams = {
            "A": rng.integers(0, 8, size=600),
            "B": rng.integers(0, 80, size=600),
            "C": rng.integers(40, 120, size=600),
        }
        for name, vals in streams.items():
            service.register(name)
            service.ingest(name, rng.integers(0, 50, size=600), vals)
            sizes[name] = 600
        plan = choose_join_order(list(streams), sizes, service.at_window(0, 50))
        assert sorted(plan.order) == ["A", "B", "C"]
        assert plan.estimated_cost >= 0.0


class TestServerRequests:
    @pytest.fixture()
    def service(self, rng) -> SketchService:
        service = make_service()
        service.ingest(rng.integers(0, 100, size=1000), rng.integers(0, 20, size=1000))
        return service

    def send(self, service, request) -> dict:
        return handle_request(service, json.dumps(request))

    def test_ping(self, service):
        assert self.send(service, {"op": "ping"}) == {
            "ok": True, "op": "ping", "pong": True,
        }

    def test_estimate_matches_in_process(self, service):
        response = self.send(service, {"op": "estimate", "from": 0, "until": 100})
        assert response["ok"]
        assert response["estimate"] == service.estimate(0, 100)
        assert response["window"] == [0, 100]

    def test_sketch_round_trips(self, service):
        from repro.engine import load_sketch

        response = self.send(service, {"op": "sketch", "from": 0, "until": 50})
        assert response["ok"]
        sketch = load_sketch(response["sketch"])
        assert np.array_equal(sketch.counters, service.query(0, 50).counters)

    def test_ingest_then_estimate(self, service):
        n_before = service.query(0, 100).n
        response = self.send(
            service,
            {"op": "ingest", "timestamps": [5, 15], "values": [3, 3]},
        )
        assert response == {"ok": True, "op": "ingest", "ingested": 2}
        assert service.query(0, 100).n == n_before + 2

    def test_compact_and_info_and_stats(self, service):
        assert self.send(service, {"op": "compact", "before": 50})["folded"] == 5
        info = self.send(service, {"op": "info"})
        assert info["kind"] == "tugofwar" and info["coverage"] == [0, 100]
        assert [0, 50] in info["spans"]  # the compacted span
        assert info["sampler_rng"] == "counter"
        stats = self.send(service, {"op": "stats"})
        assert set(stats["cache"]) >= {"hits", "misses", "coalesced"}

    def test_user_errors_are_responses_not_exceptions(self, service):
        cases = [
            "{not json",
            json.dumps(["not", "an", "object"]),
            json.dumps({"no": "op"}),
            json.dumps({"op": "warp"}),
            json.dumps({"op": "estimate"}),  # missing window
            json.dumps({"op": "estimate", "from": 3, "until": 40}),  # misaligned
            json.dumps({"op": "estimate", "from": 40, "until": 3}),  # inverted
            json.dumps({"op": "ingest", "timestamps": 7, "values": [1]}),
            json.dumps({"op": "evict"}),  # missing 'before'
        ]
        for line in cases:
            response = handle_request(service, line)
            assert response["ok"] is False and response["error"], line

    def test_over_the_wire(self, service):
        server = SketchServiceServer(service, ("127.0.0.1", 0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as conn:
                wire = conn.makefile("rw", encoding="utf-8")
                for request, check in [
                    ({"op": "ping"}, lambda r: r["pong"] is True),
                    (
                        {"op": "estimate", "from": 0, "until": 100},
                        lambda r: r["estimate"] == service.estimate(0, 100),
                    ),
                    ({"op": "info"}, lambda r: r["kind"] == "tugofwar"),
                ]:
                    wire.write(json.dumps(request) + "\n")
                    wire.flush()
                    response = json.loads(wire.readline())
                    assert response["ok"] and check(response)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_max_requests_shuts_the_server_down(self, service):
        server = SketchServiceServer(service, ("127.0.0.1", 0), max_requests=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as conn:
            wire = conn.makefile("rw", encoding="utf-8")
            for _ in range(2):
                wire.write(json.dumps({"op": "ping"}) + "\n")
                wire.flush()
                assert json.loads(wire.readline())["ok"]
        thread.join(timeout=10)
        assert not thread.is_alive()  # serve_forever returned on its own
        server.server_close()

    def test_snapshot_op_round_trips_the_store(self, service):
        response = self.send(service, {"op": "snapshot"})
        assert response["ok"]
        restored = WindowedSketchStore.from_dict(response["snapshot"])
        assert restored.estimate(0, 100) == service.estimate(0, 100)

    def test_shutdown_op_acks_then_stops_serving(self, service):
        server = SketchServiceServer(service, ("127.0.0.1", 0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as conn:
            wire = conn.makefile("rw", encoding="utf-8")
            wire.write(json.dumps({"op": "shutdown"}) + "\n")
            wire.flush()
            response = json.loads(wire.readline())
            assert response == {"ok": True, "op": "shutdown", "stopping": True}
        thread.join(timeout=10)
        assert not thread.is_alive()  # the ack came before the stop
        server.server_close()

    def test_rejects_objects_without_the_service_surface(self):
        with pytest.raises(TypeError, match="serving surface"):
            SketchServiceServer(object())

    def test_rejects_non_positive_read_timeout(self, service):
        with pytest.raises(ValueError, match="read_timeout"):
            SketchServiceServer(service, ("127.0.0.1", 0), read_timeout=0)

    def test_stalled_connection_cannot_block_shutdown(self, service):
        # A dead client holds a socket open without ever sending a full
        # line.  The per-connection read timeout must reclaim its
        # handler thread, so a --max-requests shutdown completes and no
        # thread outlives the server.
        server = SketchServiceServer(
            service, ("127.0.0.1", 0), max_requests=2, read_timeout=0.3
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        stalled = socket.create_connection((host, port), timeout=10)
        try:
            stalled.sendall(b'{"op": "ping"')  # half a line, never finished
            with socket.create_connection((host, port), timeout=10) as conn:
                wire = conn.makefile("rw", encoding="utf-8")
                for _ in range(2):
                    wire.write(json.dumps({"op": "ping"}) + "\n")
                    wire.flush()
                    assert json.loads(wire.readline())["ok"]
            thread.join(timeout=10)
            assert not thread.is_alive()  # budget shutdown was not blocked
            # The stalled handler times out and closes the connection:
            # the dead client sees EOF instead of pinning a thread.
            stalled.settimeout(10)
            assert stalled.recv(1) == b""
        finally:
            stalled.close()
            server.server_close()
