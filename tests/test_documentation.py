"""Meta tests: documentation coverage and example validity.

The deliverable includes doc comments on every public item; these tests
make that a CI property rather than a promise.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import py_compile
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        try:
            yield importlib.import_module(info.name)
        except Exception:
            # Optional-dependency kernel backends (repro.kernels._numba,
            # ._cffi) only import on hosts with numba / cffi+cc; their
            # docstrings are checked wherever they do load.
            if not info.name.startswith("repro.kernels._"):
                raise


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    """Every public class, function, and method has a docstring."""
    undocumented: list[str] = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not (
                    meth.__doc__ and meth.__doc__.strip()
                ):
                    undocumented.append(f"{module.__name__}.{name}.{meth_name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_public_api_matches_all():
    """repro.__all__ is complete and every entry resolves."""
    for name in repro.__all__:
        assert hasattr(repro, name), name


EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    """Every example is at least syntactically valid."""
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_have_docstring_and_main(path):
    source = path.read_text()
    assert source.lstrip().startswith(('"""', '#!')), path.name
    assert 'if __name__ == "__main__":' in source, path.name


def test_required_docs_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        doc = REPO_ROOT / name
        assert doc.exists(), name
        assert len(doc.read_text()) > 500, name
