"""Tests for the reproduction CLI (python -m repro)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_requires_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_sweep_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "zipf1.0" in out and "path" in out

    def test_figure_sweep(self, capsys):
        assert main(["figure", "8", "--scale", "0.02", "--max-log2-s", "5"]) == 0
        out = capsys.readouterr().out
        assert "poisson" in out
        assert "15%-convergence" in out

    def test_figure_15(self, capsys):
        assert main(["figure", "15", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out

    def test_figure_invalid_number(self):
        with pytest.raises(KeyError):
            main(["figure", "1", "--scale", "0.02"])

    def test_convergence_subset(self, capsys):
        assert main(
            ["convergence", "--datasets", "poisson", "--scale", "0.03",
             "--max-log2-s", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "poisson" in out

    def test_section44_paper_values(self, capsys):
        assert main(["section44", "--paper-values"]) == 0
        out = capsys.readouterr().out
        assert "break-even" in out
        assert "selfsimilar" in out

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "--dataset", "mf3", "--scale", "0.05", "--max-log2-s", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "mf3" in out and "tug-of-war" in out

    def test_sweep_unknown_dataset(self):
        with pytest.raises(KeyError):
            main(["sweep", "--dataset", "nope", "--scale", "0.05"])
