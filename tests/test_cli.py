"""Tests for the reproduction CLI (python -m repro)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_requires_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_sweep_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "zipf1.0" in out and "path" in out

    def test_figure_sweep(self, capsys):
        assert main(["figure", "8", "--scale", "0.02", "--max-log2-s", "5"]) == 0
        out = capsys.readouterr().out
        assert "poisson" in out
        assert "15%-convergence" in out

    def test_figure_15(self, capsys):
        assert main(["figure", "15", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out

    def test_figure_invalid_number(self):
        with pytest.raises(KeyError):
            main(["figure", "1", "--scale", "0.02"])

    def test_convergence_subset(self, capsys):
        assert main(
            ["convergence", "--datasets", "poisson", "--scale", "0.03",
             "--max-log2-s", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "poisson" in out

    def test_section44_paper_values(self, capsys):
        assert main(["section44", "--paper-values"]) == 0
        out = capsys.readouterr().out
        assert "break-even" in out
        assert "selfsimilar" in out

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "--dataset", "mf3", "--scale", "0.05", "--max-log2-s", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "mf3" in out and "tug-of-war" in out

    def test_sweep_unknown_dataset(self):
        with pytest.raises(KeyError):
            main(["sweep", "--dataset", "nope", "--scale", "0.05"])


class TestSketchCommands:
    @pytest.fixture()
    def values_file(self, tmp_path):
        rng = np.random.default_rng(3)
        path = tmp_path / "values.txt"
        path.write_text(
            "\n".join(str(v) for v in rng.integers(0, 100, size=2000).tolist())
        )
        return str(path)

    def test_kinds(self, capsys):
        assert main(["sketch", "kinds"]) == 0
        out = capsys.readouterr().out.split()
        assert "tugofwar" in out and "samplecount" in out and "frequency" in out

    def test_build_info_estimate_round_trip(self, tmp_path, values_file, capsys):
        out_path = str(tmp_path / "sk.json")
        assert main(
            ["sketch", "build", "--kind", "tugofwar", "--values-file", values_file,
             "--s1", "64", "--s2", "5", "--seed", "9", "--out", out_path]
        ) == 0
        payload = json.loads((tmp_path / "sk.json").read_text())
        assert payload["kind"] == "tugofwar"
        assert main(["sketch", "info", out_path]) == 0
        assert "kind=tugofwar" in capsys.readouterr().out
        assert main(["sketch", "estimate", out_path]) == 0
        float(capsys.readouterr().out.strip())  # parses as a number

    def test_build_from_dataset(self, tmp_path, capsys):
        out_path = str(tmp_path / "ds.json")
        assert main(
            ["sketch", "build", "--kind", "frequency", "--dataset", "zipf1.0",
             "--scale", "0.01", "--out", out_path]
        ) == 0
        assert "kind=frequency" in capsys.readouterr().out

    def test_sharded_build_merges_to_single_shot(self, tmp_path, values_file, capsys):
        single = str(tmp_path / "single.json")
        sharded = str(tmp_path / "sharded.json")
        base = ["sketch", "build", "--kind", "tugofwar", "--values-file", values_file,
                "--s1", "32", "--s2", "3", "--seed", "4"]
        assert main(base + ["--out", single]) == 0
        assert main(base + ["--shards", "4", "--out", sharded]) == 0
        a = json.loads((tmp_path / "single.json").read_text())
        b = json.loads((tmp_path / "sharded.json").read_text())
        assert a["z"] == b["z"]  # bit-identical counters

    def test_merge_command(self, tmp_path, values_file, capsys):
        left = str(tmp_path / "left.json")
        right = str(tmp_path / "right.json")
        merged = str(tmp_path / "merged.json")
        base = ["sketch", "build", "--kind", "tugofwar", "--s1", "32", "--s2", "3",
                "--seed", "4", "--values-file", values_file]
        assert main(base + ["--out", left]) == 0
        assert main(base + ["--out", right]) == 0
        assert main(["sketch", "merge", left, right, "--out", merged]) == 0
        payload = json.loads((tmp_path / "merged.json").read_text())
        assert payload["n"] == 4000  # both halves counted

    def test_build_unknown_kind(self, tmp_path, values_file):
        with pytest.raises(KeyError):
            main(["sketch", "build", "--kind", "nope", "--values-file", values_file,
                  "--out", str(tmp_path / "x.json")])
