"""Tests for the reproduction CLI (python -m repro)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_requires_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_sweep_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "zipf1.0" in out and "path" in out

    def test_figure_sweep(self, capsys):
        assert main(["figure", "8", "--scale", "0.02", "--max-log2-s", "5"]) == 0
        out = capsys.readouterr().out
        assert "poisson" in out
        assert "15%-convergence" in out

    def test_figure_15(self, capsys):
        assert main(["figure", "15", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out

    def test_figure_invalid_number_clear_error(self, capsys):
        # ISSUE 3 satellite: registry KeyErrors no longer escape as
        # tracebacks — one line on stderr, exit code 2.
        assert main(["figure", "1", "--scale", "0.02"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "not an accuracy sweep" in err

    def test_convergence_subset(self, capsys):
        assert main(
            ["convergence", "--datasets", "poisson", "--scale", "0.03",
             "--max-log2-s", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "poisson" in out

    def test_section44_paper_values(self, capsys):
        assert main(["section44", "--paper-values"]) == 0
        out = capsys.readouterr().out
        assert "break-even" in out
        assert "selfsimilar" in out

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "--dataset", "mf3", "--scale", "0.05", "--max-log2-s", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "mf3" in out and "tug-of-war" in out

    def test_sweep_unknown_dataset_clear_error(self, capsys):
        assert main(["sweep", "--dataset", "nope", "--scale", "0.05"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "unknown data set" in err
        assert "zipf1.0" in err  # the message lists what *is* registered

    def test_convergence_unknown_dataset_clear_error(self, capsys):
        assert main(
            ["convergence", "--datasets", "nope", "--scale", "0.03"]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "unknown data set" in err


class TestSketchCommands:
    @pytest.fixture()
    def values_file(self, tmp_path):
        rng = np.random.default_rng(3)
        path = tmp_path / "values.txt"
        path.write_text(
            "\n".join(str(v) for v in rng.integers(0, 100, size=2000).tolist())
        )
        return str(path)

    def test_kinds(self, capsys):
        assert main(["sketch", "kinds"]) == 0
        lines = capsys.readouterr().out.splitlines()
        listed = {line.split(":", 1)[0] for line in lines if line}
        assert {"tugofwar", "samplecount", "frequency", "fk_moments", "f0"} <= listed
        # Every kind ships a one-line description of what it estimates.
        assert all(":" in line and line.split(":", 1)[1].strip() for line in lines)
        # The footer reports the active kernel backend and sampler RNG scheme.
        assert any(line.startswith("kernel backend: ") for line in lines)
        assert any(line.startswith("sampler rng: counter") for line in lines)

    def test_build_info_estimate_round_trip(self, tmp_path, values_file, capsys):
        out_path = str(tmp_path / "sk.json")
        assert main(
            ["sketch", "build", "--kind", "tugofwar", "--values-file", values_file,
             "--s1", "64", "--s2", "5", "--seed", "9", "--out", out_path]
        ) == 0
        payload = json.loads((tmp_path / "sk.json").read_text())
        assert payload["kind"] == "tugofwar"
        assert main(["sketch", "info", out_path]) == 0
        assert "kind=tugofwar" in capsys.readouterr().out
        assert main(["sketch", "estimate", out_path]) == 0
        float(capsys.readouterr().out.strip())  # parses as a number

    def test_build_from_dataset(self, tmp_path, capsys):
        out_path = str(tmp_path / "ds.json")
        assert main(
            ["sketch", "build", "--kind", "frequency", "--dataset", "zipf1.0",
             "--scale", "0.01", "--out", out_path]
        ) == 0
        assert "kind=frequency" in capsys.readouterr().out

    def test_sharded_build_merges_to_single_shot(self, tmp_path, values_file, capsys):
        single = str(tmp_path / "single.json")
        sharded = str(tmp_path / "sharded.json")
        base = ["sketch", "build", "--kind", "tugofwar", "--values-file", values_file,
                "--s1", "32", "--s2", "3", "--seed", "4"]
        assert main(base + ["--out", single]) == 0
        assert main(base + ["--shards", "4", "--out", sharded]) == 0
        a = json.loads((tmp_path / "single.json").read_text())
        b = json.loads((tmp_path / "sharded.json").read_text())
        assert a["z"] == b["z"]  # bit-identical counters

    def test_merge_command(self, tmp_path, values_file, capsys):
        left = str(tmp_path / "left.json")
        right = str(tmp_path / "right.json")
        merged = str(tmp_path / "merged.json")
        base = ["sketch", "build", "--kind", "tugofwar", "--s1", "32", "--s2", "3",
                "--seed", "4", "--values-file", values_file]
        assert main(base + ["--out", left]) == 0
        assert main(base + ["--out", right]) == 0
        assert main(["sketch", "merge", left, right, "--out", merged]) == 0
        payload = json.loads((tmp_path / "merged.json").read_text())
        assert payload["n"] == 4000  # both halves counted

    def test_build_unknown_kind_clear_error(self, tmp_path, values_file, capsys):
        assert main(
            ["sketch", "build", "--kind", "nope", "--values-file", values_file,
             "--out", str(tmp_path / "x.json")]
        ) == 2
        assert "unknown sketch kind" in capsys.readouterr().err

    def test_build_missing_values_file_clear_error(self, tmp_path, capsys):
        assert main(
            ["sketch", "build", "--values-file", str(tmp_path / "nope.txt"),
             "--out", str(tmp_path / "x.json")]
        ) == 2
        assert "no such file" in capsys.readouterr().err

    def test_build_unknown_dataset_clear_error(self, tmp_path, capsys):
        assert main(
            ["sketch", "build", "--dataset", "nope",
             "--out", str(tmp_path / "x.json")]
        ) == 2
        assert "unknown data set" in capsys.readouterr().err

    def test_sharded_build_unmergeable_kind_clear_error(
        self, tmp_path, values_file, capsys
    ):
        assert main(
            ["sketch", "build", "--kind", "samplecount", "--values-file",
             values_file, "--shards", "2", "--out", str(tmp_path / "x.json")]
        ) == 2
        assert "does not support merging" in capsys.readouterr().err

    def test_merge_mismatched_seeds_clear_error(
        self, tmp_path, values_file, capsys
    ):
        left, right = str(tmp_path / "l.json"), str(tmp_path / "r.json")
        base = ["sketch", "build", "--kind", "tugofwar", "--s1", "16",
                "--s2", "2", "--values-file", values_file]
        assert main(base + ["--seed", "1", "--out", left]) == 0
        assert main(base + ["--seed", "2", "--out", right]) == 0
        capsys.readouterr()
        assert main(
            ["sketch", "merge", left, right, "--out", str(tmp_path / "m.json")]
        ) == 2
        assert "different hash families" in capsys.readouterr().err

    def test_estimate_missing_file_clear_error(self, tmp_path, capsys):
        # ISSUE 2 satellite: user-level failures surface as one clear
        # line and exit code 2, not a traceback.
        assert main(["sketch", "estimate", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "no such file" in err

    def test_estimate_unregistered_kind_clear_error(self, tmp_path, capsys):
        path = tmp_path / "alien.json"
        path.write_text(json.dumps({"kind": "alien", "z": []}))
        assert main(["sketch", "estimate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown sketch kind" in err and "registered kinds" in err

    def test_estimate_corrupt_payload_clear_error(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        assert main(["sketch", "estimate", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestStoreCommands:
    @pytest.fixture()
    def events_file(self, tmp_path):
        rng = np.random.default_rng(8)
        ts = rng.integers(0, 100, size=3000)
        values = rng.integers(0, 50, size=3000)
        path = tmp_path / "events.txt"
        path.write_text(
            "\n".join(f"{t} {v}" for t, v in zip(ts.tolist(), values.tolist()))
        )
        return str(path)

    @pytest.fixture()
    def store_file(self, tmp_path, events_file):
        path = str(tmp_path / "store.json")
        assert main(
            ["store", "init", "--kind", "tugofwar", "--bucket-width", "10",
             "--s1", "32", "--s2", "3", "--seed", "5", "--out", path]
        ) == 0
        assert main(["store", "ingest", path, "--events-file", events_file]) == 0
        return path

    def test_init_writes_config(self, tmp_path, capsys):
        path = tmp_path / "st.json"
        assert main(
            ["store", "init", "--kind", "frequency", "--bucket-width", "7",
             "--out", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "windowed-store"
        assert payload["bucket_width"] == 7
        assert payload["spec"]["kind"] == "frequency"

    def test_ingest_and_query(self, store_file, capsys):
        assert main(
            ["store", "query", store_file, "--from", "0", "--until", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "window [0, 100)" in out and "estimate=" in out

    def test_query_matches_monolithic_sketch(
        self, tmp_path, store_file, events_file, capsys
    ):
        # The acceptance property, end to end through the CLI: the
        # windowed estimate equals a monolithic build over the window.
        events = np.loadtxt(events_file, dtype=np.int64)
        window = events[(events[:, 0] >= 20) & (events[:, 0] < 60)][:, 1]
        values_file = tmp_path / "window_values.txt"
        values_file.write_text("\n".join(str(v) for v in window.tolist()))
        mono = tmp_path / "mono.json"
        assert main(
            ["sketch", "build", "--kind", "tugofwar", "--values-file",
             str(values_file), "--s1", "32", "--s2", "3", "--seed", "5",
             "--out", str(mono)]
        ) == 0
        capsys.readouterr()  # drain the build summary
        assert main(["sketch", "estimate", str(mono)]) == 0
        mono_est = capsys.readouterr().out.strip()
        assert main(
            ["store", "query", store_file, "--from", "20", "--until", "60"]
        ) == 0
        assert f"estimate={float(mono_est):.6g}" in capsys.readouterr().out

    def test_query_inverted_window_clear_error(self, store_file, capsys):
        assert main(
            ["store", "query", store_file, "--from", "10", "--until", "5"]
        ) == 2
        assert "empty window" in capsys.readouterr().err

    def test_init_compact_retention_with_sampler_clear_error(
        self, tmp_path, capsys
    ):
        assert main(
            ["store", "init", "--kind", "naivesampling", "--bucket-width",
             "10", "--retention", "2", "--out", str(tmp_path / "x.json")]
        ) == 2
        assert "evict" in capsys.readouterr().err

    def test_query_misaligned_clear_error(self, store_file, capsys):
        assert main(
            ["store", "query", store_file, "--from", "5", "--until", "60"]
        ) == 2
        assert "not aligned" in capsys.readouterr().err
        assert main(
            ["store", "query", store_file, "--from", "5", "--until", "60",
             "--align", "outer"]
        ) == 0
        assert "window [0, 60)" in capsys.readouterr().out

    def test_compact_then_query_unchanged(self, store_file, capsys):
        assert main(
            ["store", "query", store_file, "--from", "0", "--until", "100"]
        ) == 0
        before = capsys.readouterr().out
        assert main(["store", "compact", store_file, "--before", "50"]) == 0
        capsys.readouterr()
        assert main(
            ["store", "query", store_file, "--from", "0", "--until", "100"]
        ) == 0
        assert capsys.readouterr().out == before

    def test_snapshot_round_trips(self, tmp_path, store_file, capsys):
        snap = str(tmp_path / "snap.json")
        assert main(["store", "snapshot", store_file, "--out", snap]) == 0
        assert json.loads((tmp_path / "snap.json").read_text()) == json.loads(
            (tmp_path / "store.json").read_text()
        )

    def test_info_lists_spans(self, store_file, capsys):
        assert main(["store", "info", store_file]) == 0
        out = capsys.readouterr().out
        assert "spans=10" in out and "span [0, 10)" in out

    def test_ingest_with_counts_column(self, tmp_path, capsys):
        path = str(tmp_path / "st.json")
        assert main(
            ["store", "init", "--kind", "tugofwar", "--bucket-width", "10",
             "--s1", "16", "--s2", "3", "--out", path]
        ) == 0
        events = tmp_path / "signed.txt"
        events.write_text("1 7 3\n2 7 -1\n15 9 2\n")
        assert main(["store", "ingest", path, "--events-file", str(events)]) == 0
        capsys.readouterr()
        assert main(["store", "query", path, "--from", "0", "--until", "20"]) == 0
        assert "estimate=" in capsys.readouterr().out

    def test_corrupt_store_payload_clear_error(self, tmp_path, store_file, capsys):
        # Validation failures inside the payload (not just bad JSON)
        # must surface as one-line errors too.
        payload = json.loads((tmp_path / "store.json").read_text())
        payload["bucket_width"] = 0
        bad = tmp_path / "bad_store.json"
        bad.write_text(json.dumps(payload))
        assert main(["store", "info", str(bad)]) == 2
        assert "corrupt" in capsys.readouterr().err
        payload["bucket_width"] = 10
        payload["spans"] = [[0, 1]]  # span entry missing its sketch
        bad.write_text(json.dumps(payload))
        assert main(["store", "info", str(bad)]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_store_missing_file_clear_error(self, tmp_path, capsys):
        assert main(
            ["store", "query", str(tmp_path / "nope.json"),
             "--from", "0", "--until", "10"]
        ) == 2
        assert "no such file" in capsys.readouterr().err

    def test_ingest_deletes_into_sampler_clear_error(self, tmp_path, capsys):
        path = str(tmp_path / "ns.json")
        assert main(
            ["store", "init", "--kind", "naivesampling", "--bucket-width",
             "10", "--s1", "4", "--s2", "2", "--out", path]
        ) == 0
        events = tmp_path / "neg.txt"
        events.write_text("2 7 -1\n")
        capsys.readouterr()
        assert main(["store", "ingest", path, "--events-file", str(events)]) == 2
        assert "insertion-only" in capsys.readouterr().err

    def test_ingest_unmatched_delete_frequency_clear_error(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "fv.json")
        assert main(
            ["store", "init", "--kind", "frequency", "--bucket-width", "10",
             "--out", path]
        ) == 0
        events = tmp_path / "orphan_delete.txt"
        events.write_text("5 7 -1\n")
        capsys.readouterr()
        assert main(["store", "ingest", path, "--events-file", str(events)]) == 2
        assert "bucket span" in capsys.readouterr().err

    def test_ingest_bad_events_clear_error(self, tmp_path, store_file, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("1 2 3 4\n")
        assert main(
            ["store", "ingest", store_file, "--events-file", str(bad)]
        ) == 2
        assert "columns" in capsys.readouterr().err

    def test_query_unmergeable_multi_span_clear_error(self, tmp_path, capsys):
        path = str(tmp_path / "ns.json")
        assert main(
            ["store", "init", "--kind", "naivesampling", "--bucket-width", "10",
             "--s1", "4", "--s2", "2", "--out", path]
        ) == 0
        events = tmp_path / "two_buckets.txt"
        events.write_text("1 7\n15 9\n")
        assert main(["store", "ingest", path, "--events-file", str(events)]) == 0
        capsys.readouterr()
        assert main(["store", "query", path, "--from", "0", "--until", "10"]) == 0
        assert "estimate=" in capsys.readouterr().out
        assert main(["store", "query", path, "--from", "0", "--until", "20"]) == 2
        assert "does not support merging" in capsys.readouterr().err

    def test_init_unknown_kind_clear_error(self, tmp_path, capsys):
        assert main(
            ["store", "init", "--kind", "nope", "--bucket-width", "10",
             "--out", str(tmp_path / "x.json")]
        ) == 2
        assert "unknown sketch kind" in capsys.readouterr().err


class TestServeCommand:
    @pytest.fixture()
    def store_file(self, tmp_path):
        rng = np.random.default_rng(8)
        events = tmp_path / "events.txt"
        events.write_text(
            "\n".join(
                f"{t} {v}"
                for t, v in zip(
                    rng.integers(0, 100, size=500).tolist(),
                    rng.integers(0, 50, size=500).tolist(),
                )
            )
        )
        path = str(tmp_path / "serve_store.json")
        assert main(
            ["store", "init", "--kind", "tugofwar", "--bucket-width", "10",
             "--s1", "32", "--s2", "3", "--seed", "5", "--out", path]
        ) == 0
        assert main(["store", "ingest", path, "--events-file", str(events)]) == 0
        return path

    def test_serve_missing_store_clear_error(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope.json")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_serve_corrupt_store_clear_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["serve", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_serve_bad_cache_size_clear_error(self, store_file, capsys):
        assert main(["serve", store_file, "--cache-entries", "0"]) == 2
        assert "max_entries" in capsys.readouterr().err

    def test_serve_answers_over_the_wire(self, store_file, capsys):
        # End to end through the CLI entry point: bind an ephemeral
        # port, serve a bounded number of requests, compare the wire
        # answer against the store file's own merge-on-query estimate.
        import socket
        import threading
        import time
        from pathlib import Path

        from repro.store import WindowedSketchStore

        rc: list[int] = []
        thread = threading.Thread(
            target=lambda: rc.append(
                main(["serve", store_file, "--port", "0", "--max-requests", "2"])
            )
        )
        thread.start()
        port = None
        for _ in range(100):  # wait for the "serving ... on host:port" line
            out = capsys.readouterr().out
            if " on 127.0.0.1:" in out:
                port = int(out.split(" on 127.0.0.1:")[1].split()[0])
                break
            time.sleep(0.05)
        assert port is not None, "server never announced its port"
        with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
            wire = conn.makefile("rw", encoding="utf-8")
            for request in ({"op": "ping"}, {"op": "estimate", "from": 0, "until": 100}):
                wire.write(json.dumps(request) + "\n")
                wire.flush()
                responses = [json.loads(wire.readline())]
                assert all(r["ok"] for r in responses)
        thread.join(timeout=10)
        assert not thread.is_alive() and rc == [0]
        expected = WindowedSketchStore.from_dict(
            json.loads(Path(store_file).read_text())
        ).estimate(0, 100)
        assert responses[-1]["estimate"] == expected


class TestClusterCommand:
    """ISSUE 5: `serve --shards` and the `repro cluster` tool group."""

    @pytest.fixture()
    def empty_store(self, tmp_path):
        path = str(tmp_path / "cluster_store.json")
        assert main(
            ["store", "init", "--kind", "tugofwar", "--bucket-width", "10",
             "--s1", "32", "--s2", "3", "--seed", "5", "--out", path]
        ) == 0
        return path

    def test_worker_rejects_bad_config_json(self, capsys):
        assert main(["cluster", "worker", "--config-json", "{broken"]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_worker_rejects_unknown_kind(self, capsys):
        config = json.dumps({"spec": {"kind": "warpdrive"}, "bucket_width": 1})
        assert main(["cluster", "worker", "--config-json", config]) == 2
        assert "warpdrive" in capsys.readouterr().err

    def test_info_unreachable_shard_clear_error(self, capsys):
        assert main(["cluster", "info", "--connect", "127.0.0.1:1"]) == 2
        assert "unreachable" in capsys.readouterr().err

    def test_estimate_malformed_connect_clear_error(self, capsys):
        assert main(
            ["cluster", "estimate", "--connect", "nonsense",
             "--from", "0", "--until", "10"]
        ) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_ingest_bench_rejects_non_positive_sizes(self, capsys):
        assert main(
            ["cluster", "ingest-bench", "--connect", "127.0.0.1:1",
             "--events", "0"]
        ) == 2
        assert "positive" in capsys.readouterr().err

    def test_serve_shards_rejects_nonempty_store(self, tmp_path, capsys):
        events = tmp_path / "events.txt"
        events.write_text("1 5\n15 9\n")
        path = str(tmp_path / "full_store.json")
        assert main(
            ["store", "init", "--kind", "tugofwar", "--bucket-width", "10",
             "--seed", "3", "--out", path]
        ) == 0
        assert main(["store", "ingest", path, "--events-file", str(events)]) == 0
        assert main(["serve", path, "--shards", "2"]) == 2
        assert "empty store" in capsys.readouterr().err

    def test_serve_shards_sampler_kind_clear_error(self, tmp_path, capsys):
        # A non-mergeable kind cannot be gather-merged; the spawn must
        # unwind into the one-line exit-2 contract, not a traceback.
        path = str(tmp_path / "sampler_store.json")
        assert main(
            ["store", "init", "--kind", "samplecount", "--bucket-width", "10",
             "--seed", "1", "--out", path]
        ) == 0
        assert main(["serve", path, "--shards", "2"]) == 2
        assert "scatter" in capsys.readouterr().err

    def test_serve_shards_rejects_bad_counts(self, empty_store, capsys):
        assert main(["serve", empty_store, "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(["serve", empty_store, "--read-timeout", "-1"]) == 2
        assert "--read-timeout" in capsys.readouterr().err

    def test_serve_shards_end_to_end(self, empty_store, capsys):
        # Spawn a 2-shard cluster through the real CLI entry point,
        # ingest over the wire, and check the scatter–gather estimate
        # is bit-identical to a monolithic store of the same events.
        import socket
        import threading
        import time

        import numpy as np

        from repro.store import SketchSpec, WindowedSketchStore

        rng = np.random.default_rng(8)
        ts = rng.integers(0, 100, size=600).tolist()
        vals = rng.integers(0, 80, size=600).tolist()

        rc: list[int] = []
        thread = threading.Thread(
            target=lambda: rc.append(main(
                ["serve", empty_store, "--shards", "2", "--port", "0",
                 "--max-requests", "3"]
            ))
        )
        thread.start()
        port = None
        for _ in range(400):  # workers take a moment to spawn
            out = capsys.readouterr().out
            if " on 127.0.0.1:" in out:
                port = int(out.split(" on 127.0.0.1:")[1].split()[0])
                break
            time.sleep(0.05)
        assert port is not None, "cluster front end never announced its port"
        with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
            wire = conn.makefile("rw", encoding="utf-8")
            requests = [
                {"op": "ping"},
                {"op": "ingest", "timestamps": ts, "values": vals},
                {"op": "estimate", "from": 0, "until": 100},
            ]
            responses = []
            for request in requests:
                wire.write(json.dumps(request) + "\n")
                wire.flush()
                responses.append(json.loads(wire.readline()))
        thread.join(timeout=30)
        assert not thread.is_alive() and rc == [0]
        assert all(r["ok"] for r in responses)
        mono = WindowedSketchStore(
            SketchSpec("tugofwar", {"s1": 32, "s2": 3, "seed": 5}),
            bucket_width=10,
        )
        mono.ingest(ts, vals)
        assert responses[-1]["estimate"] == mono.estimate(0, 100)


class TestPlanCommand:
    """ISSUE 4: the `repro plan` command over seeded workloads."""

    def test_plan_chain_all_policies(self, capsys):
        assert main(
            ["plan", "--shape", "chain", "--relations", "4", "--rows", "300",
             "--policy", "all", "--k", "256", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        for policy in ("exact", "sketch", "bound"):
            assert f"policy={policy}" in out
        assert "⋈" in out  # render_plan output
        assert "regret vs exact-policy plan" in out
        assert "shape=chain" in out and "edges=3" in out

    def test_plan_single_policy_star_greedy(self, capsys):
        assert main(
            ["plan", "--shape", "star", "--relations", "4", "--rows", "300",
             "--policy", "exact", "--enumerator", "greedy", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "policy=exact" in out and "policy=sketch" not in out

    def test_plan_deterministic_output(self, capsys):
        argv = ["plan", "--shape", "clique", "--relations", "3", "--rows",
                "200", "--policy", "sketch", "--seed", "9"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_plan_too_few_relations_clear_error(self, capsys):
        assert main(["plan", "--relations", "1"]) == 2
        assert "--relations" in capsys.readouterr().err

    def test_plan_bad_rows_clear_error(self, capsys):
        assert main(["plan", "--rows", "0"]) == 2
        assert "--rows" in capsys.readouterr().err

    def test_plan_unknown_choices_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--shape", "snowflake"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--enumerator", "exhaustive"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--policy", "psychic"])

    def test_plan_bad_confidence_clear_error(self, capsys):
        assert main(
            ["plan", "--relations", "3", "--rows", "100", "--policy", "bound",
             "--confidence", "-2"]
        ) == 2
        assert "confidence" in capsys.readouterr().err

    def test_plan_confidence_ignored_by_unrelated_policy(self, capsys):
        # --confidence only parameterises the bound policy; a sketch-only
        # run must not reject (or even build) the bound backend.
        assert main(
            ["plan", "--relations", "3", "--rows", "100", "--policy",
             "sketch", "--confidence", "-2"]
        ) == 0
        assert "policy=sketch" in capsys.readouterr().out

    def test_plan_bad_k_and_seed_clear_errors(self, capsys):
        assert main(
            ["plan", "--relations", "3", "--rows", "100", "--policy",
             "sketch", "--k", "0"]
        ) == 2
        assert "--k" in capsys.readouterr().err
        assert main(["plan", "--relations", "3", "--seed", "-1"]) == 2
        assert "--seed" in capsys.readouterr().err
