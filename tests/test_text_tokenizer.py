"""Tests for the real-text tokenizer (data.text.tokenize_text)."""

from __future__ import annotations

import numpy as np

from repro.core.frequency import self_join_size
from repro.data.text import tokenize_text

SAMPLE = (
    "the cat sat on the mat. The dog sat on the log. "
    "the cat and the dog sat."
)


class TestTokenizeText:
    def test_stream_length_is_word_count(self):
        out = tokenize_text(SAMPLE)
        assert out.size == 18

    def test_rank_one_is_most_frequent(self):
        out = tokenize_text(SAMPLE)
        # 'the' occurs 6 times (case-folded) and must map to rank 1.
        values, counts = np.unique(out, return_counts=True)
        assert values[np.argmax(counts)] == 1
        assert counts.max() == 6

    def test_frequency_profile_preserved(self):
        # SJ is invariant under the rank relabelling: compare against a
        # hand-computed histogram. the=6, sat=3, cat/dog/on=2, rest 1.
        out = tokenize_text(SAMPLE)
        expected = 6**2 + 3**2 + 3 * 2**2 + 3 * 1**2
        assert self_join_size(out) == expected

    def test_ranks_dense(self):
        out = tokenize_text(SAMPLE)
        distinct = np.unique(out)
        assert distinct.tolist() == list(range(1, distinct.size + 1))

    def test_case_sensitivity_flag(self):
        folded = tokenize_text("The the THE")
        assert np.unique(folded).size == 1
        kept = tokenize_text("The the THE", lowercase=False)
        assert np.unique(kept).size == 3

    def test_empty_text(self):
        assert tokenize_text("").size == 0
        assert tokenize_text("!!! ...").size == 0

    def test_deterministic_tie_breaking(self):
        a = tokenize_text("alpha beta alpha beta gamma")
        b = tokenize_text("alpha beta alpha beta gamma")
        assert np.array_equal(a, b)

    def test_apostrophes_kept_in_words(self):
        out = tokenize_text("don't don't do")
        values, counts = np.unique(out, return_counts=True)
        assert counts.max() == 2  # "don't" twice

    def test_usable_in_sweep(self):
        # A real-text stream drops straight into the harness.
        from repro.experiments.harness import accuracy_sweep

        stream = tokenize_text(SAMPLE * 50)
        sweep = accuracy_sweep(stream, dataset="real-text", sample_sizes=[256], rng=0)
        point = sweep.points[0]
        assert 0.5 <= point.normalized <= 1.5
