"""KeyedSketchStore: a lazy key -> windowed-store fleet over one template.

Tentpole store layer of ISSUE 8.  The bars: lazy materialisation,
structural cross-key isolation (deletions included), unseen keys
answering as empty streams, bounded key cardinality with a typed
error, per-key snapshot/restore, and whole-fleet serialisation that
round-trips bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SketchPayloadError
from repro.store import SketchSpec, WindowedSketchStore
from repro.store.keyed import KeyCardinalityError, KeyedSketchStore, validate_key

SPEC = SketchSpec("tugofwar", {"s1": 16, "s2": 3, "seed": 7})


def make_fleet(**kwargs) -> KeyedSketchStore:
    return KeyedSketchStore(SPEC, bucket_width=10, **kwargs)


def zipf_batch(seed: int, n: int = 500) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    timestamps = rng.integers(0, 80, size=n).astype(np.int64)
    values = (rng.zipf(1.4, size=n) % 200).astype(np.int64)
    return timestamps, values


class TestKeyLifecycle:
    def test_keys_materialise_lazily(self):
        fleet = make_fleet()
        assert fleet.key_count == 0 and fleet.keys == []
        ts, vals = zipf_batch(1)
        fleet.ingest("tenant-a", ts, vals)
        assert fleet.keys == ["tenant-a"] and len(fleet) == 1

    def test_store_for_without_create_does_not_materialise(self):
        fleet = make_fleet()
        assert fleet.store_for("ghost") is None
        assert fleet.key_count == 0
        assert isinstance(fleet.store_for("ghost", create=True), WindowedSketchStore)
        assert fleet.keys == ["ghost"]

    def test_unseen_key_queries_as_empty_stream(self):
        fleet = make_fleet()
        ts, vals = zipf_batch(1)
        fleet.ingest("tenant-a", ts, vals)
        ghost = fleet.query("ghost", 0, 80)
        empty = SPEC.build()
        assert np.array_equal(ghost.counters, empty.counters)
        assert fleet.estimate("ghost", 0, 80) == 0.0
        # Querying an unseen key must not materialise it.
        assert fleet.keys == ["tenant-a"]

    def test_unseen_key_window_still_validated(self):
        fleet = make_fleet()
        with pytest.raises(ValueError):
            fleet.query("ghost", 30, 10)

    def test_drop_forgets_history(self):
        fleet = make_fleet()
        ts, vals = zipf_batch(1)
        fleet.ingest("tenant-a", ts, vals)
        assert fleet.drop("tenant-a") is True
        assert fleet.drop("tenant-a") is False
        assert fleet.estimate("tenant-a", 0, 80) == 0.0

    @pytest.mark.parametrize("bad", ["", 7, None, b"k"])
    def test_invalid_keys_rejected(self, bad):
        fleet = make_fleet()
        with pytest.raises(ValueError, match="key"):
            fleet.ingest(bad, [0], [1])
        with pytest.raises(ValueError, match="key"):
            validate_key(bad)

    def test_oversized_key_rejected(self):
        with pytest.raises(ValueError, match="UTF-8"):
            validate_key("k" * 70_000)


class TestKeyCardinality:
    def test_max_keys_enforced_with_typed_error(self):
        fleet = make_fleet(max_keys=2)
        fleet.ingest("a", [0], [1])
        fleet.ingest("b", [0], [1])
        with pytest.raises(KeyCardinalityError, match="max_keys=2"):
            fleet.ingest("c", [0], [1])
        # Nothing changed: the refused key was not materialised.
        assert fleet.keys == ["a", "b"]
        # Existing keys still accept ingest.
        fleet.ingest("a", [5], [2])

    def test_cardinality_error_is_a_value_error(self):
        assert issubclass(KeyCardinalityError, ValueError)

    def test_restore_counts_against_max_keys(self):
        fleet = make_fleet(max_keys=1)
        fleet.ingest("a", [0], [1])
        donor = make_fleet()
        donor.ingest("b", [0], [1])
        with pytest.raises(KeyCardinalityError):
            fleet.restore("b", donor.snapshot("b"))
        # Replacing an existing key is always allowed.
        fleet.restore("a", donor.snapshot("b"))

    def test_bad_max_keys_rejected(self):
        with pytest.raises(ValueError, match="max_keys"):
            make_fleet(max_keys=0)


class TestIsolationAndGeometry:
    def test_per_key_matches_dedicated_store(self):
        """Each key's answers equal a standalone WindowedSketchStore
        fed only that key's events — bit for bit."""
        fleet = make_fleet()
        streams = {name: zipf_batch(seed) for seed, name in enumerate(["a", "b", "c"])}
        for name, (ts, vals) in streams.items():
            fleet.ingest(name, ts, vals)
        for name, (ts, vals) in streams.items():
            solo = WindowedSketchStore(SPEC, bucket_width=10)
            solo.ingest(ts, vals)
            for t0, t1 in ((0, 80), (10, 50)):
                got = fleet.query(name, t0, t1)
                want = solo.query(t0, t1)
                assert np.array_equal(got.counters, want.counters)

    def test_deletions_do_not_leak_across_keys(self):
        fleet = make_fleet()
        ts, vals = zipf_batch(3)
        fleet.ingest("a", ts, vals)
        fleet.ingest("b", ts, vals)
        before_b = fleet.estimate("b", 0, 80)
        # Delete all of key a's events; b must be untouched.
        fleet.ingest("a", ts, vals, counts=np.full(len(ts), -1, dtype=np.int64))
        assert fleet.estimate("a", 0, 80) == 0.0
        assert fleet.estimate("b", 0, 80) == before_b

    def test_fleet_shares_bucket_geometry(self):
        fleet = make_fleet()
        fleet.ingest("a", [3], [1])
        fleet.ingest("b", [907], [1])
        assert fleet.bucket_width == 10 and fleet.origin == 0
        for key in ("a", "b"):
            store = fleet.store_for(key)
            assert store.bucket_width == 10 and store.origin == 0
        assert fleet.coverage == (0, 910)
        assert fleet.span_count == 2

    def test_items_by_key_counts_logical_items(self):
        fleet = make_fleet()
        fleet.ingest("a", [0, 1, 2], [5, 6, 7])
        fleet.ingest("b", [0], [5])
        fleet.ingest("b", [1], [5], counts=[-1])
        assert fleet.items_by_key() == {"a": 3, "b": 0}

    def test_retention_applies_per_key(self):
        fleet = KeyedSketchStore(
            SPEC, bucket_width=10, retention_buckets=2, retention_policy="evict"
        )
        fleet.ingest("a", [5, 95], [1, 2])
        assert fleet.store_for("a").span_count == 1  # old bucket evicted
        fleet.ingest("b", [5], [1])
        assert fleet.store_for("b").span_count == 1  # b has its own horizon

    def test_compact_and_evict_fan_out(self):
        fleet = make_fleet()
        for key in ("a", "b"):
            fleet.ingest(key, [5, 25, 45], [1, 2, 3])
        assert fleet.compact(before=40) == 4  # 2 spans folded per key
        assert fleet.evict(40, key="a") == 1  # only a's compacted head
        assert fleet.store_for("a").span_count == 1
        assert fleet.store_for("b").span_count == 2


class TestSerialisation:
    def test_whole_fleet_round_trip_bit_identical(self):
        fleet = make_fleet(max_keys=8)
        for seed, name in enumerate(["a", "b"]):
            ts, vals = zipf_batch(seed)
            fleet.ingest(name, ts, vals)
        clone = KeyedSketchStore.from_dict(fleet.to_dict())
        assert clone.keys == fleet.keys
        assert clone.max_keys == fleet.max_keys
        for name in fleet.keys:
            got = clone.query(name, 0, 80)
            want = fleet.query(name, 0, 80)
            assert np.array_equal(got.counters, want.counters)
        # Continued ingest stays bit-identical (template round-tripped).
        ts, vals = zipf_batch(9)
        fleet.ingest("a", ts, vals)
        clone.ingest("a", ts, vals)
        assert np.array_equal(
            clone.query("a", 0, 80).counters, fleet.query("a", 0, 80).counters
        )

    def test_per_key_snapshot_restore(self):
        fleet = make_fleet()
        ts, vals = zipf_batch(4)
        fleet.ingest("a", ts, vals)
        payload = fleet.snapshot("a")
        other = make_fleet()
        other.restore("a", payload)
        assert np.array_equal(
            other.query("a", 0, 80).counters, fleet.query("a", 0, 80).counters
        )

    def test_snapshot_of_unseen_key_is_empty_store(self):
        payload = make_fleet().snapshot("ghost")
        restored = WindowedSketchStore.from_dict(payload)
        assert restored.span_count == 0

    def test_restore_refuses_mismatched_template(self):
        fleet = make_fleet()
        alien = WindowedSketchStore(SPEC, bucket_width=60)
        with pytest.raises(ValueError, match="template"):
            fleet.restore("a", alien.to_dict())
        other_spec = WindowedSketchStore(
            SketchSpec("tugofwar", {"s1": 16, "s2": 3, "seed": 8}), bucket_width=10
        )
        with pytest.raises(ValueError, match="template"):
            fleet.restore("a", other_spec.to_dict())

    def test_from_dict_rejects_corrupt_payloads(self):
        fleet = make_fleet()
        fleet.ingest("a", [0], [1])
        good = fleet.to_dict()
        assert good["kind"] == "keyed-store"
        with pytest.raises(SketchPayloadError, match="kind"):
            KeyedSketchStore.from_dict({**good, "kind": "windowed-store"})
        with pytest.raises(SketchPayloadError):
            KeyedSketchStore.from_dict([1, 2])
        with pytest.raises(SketchPayloadError, match="stores"):
            KeyedSketchStore.from_dict({**good, "stores": [1]})
        broken = dict(good)
        del broken["spec"]
        with pytest.raises(SketchPayloadError):
            KeyedSketchStore.from_dict(broken)

    def test_plain_store_payload_not_accepted(self):
        plain = WindowedSketchStore(SPEC, bucket_width=10)
        with pytest.raises(SketchPayloadError):
            KeyedSketchStore.from_dict(plain.to_dict())

    def test_keyed_fleet_of_fk_kinds(self):
        """The new kinds compose with the keyed store unchanged."""
        for spec in (
            SketchSpec("fk_moments", {"k": 3, "s1": 16, "s2": 3, "seed": 7}),
            SketchSpec("f0", {"s1": 16, "s2": 3, "seed": 7}),
        ):
            fleet = KeyedSketchStore(spec, bucket_width=10)
            ts, vals = zipf_batch(5)
            fleet.ingest("a", ts, vals)
            clone = KeyedSketchStore.from_dict(fleet.to_dict())
            assert np.array_equal(
                clone.query("a", 0, 80).counters,
                fleet.query("a", 0, 80).counters,
            )
