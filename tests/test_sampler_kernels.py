"""Contract suite for the counter-RNG sampler kernels.

The numpy kernels are the bit-identity oracle: every compiled backend
must reproduce them **exactly** (integer state equality, not tolerance
comparison), and every sampler ingest route — per-element inserts,
batched streams at any chunking, histogram folds — must land on the
same integer state because draw *i* at stream position *j* is a pure
function of ``(seed, j, i)``.  This file pins all of those contracts:

* counter primitives: vectorised == scalar, identical across backends;
* ``reservoir_chain`` / ``sampler_segment_counts``: compiled == numpy;
* both sampler kinds: scalar == batched == every loadable backend,
  with batch sizes straddling the event-chunk boundary and int64
  extreme values;
* snapshot -> continue round-trips under every backend and scheme;
* legacy pcg64 snapshots (no scheme field) load and continue draw for
  draw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.core.naivesampling import NaiveSamplingEstimator
from repro.core.samplecount import SampleCountFastQuery, SampleCountSketch
from repro.streams.reservoir import ReservoirSample

COMPILED = [b for b in kernels.available_backends() if b != "numpy"]
BACKENDS = kernels.available_backends()
SCHEMES = ("counter", "pcg64")

I64 = np.iinfo(np.int64)


@pytest.fixture
def restore_backend():
    """Snapshot and restore the process-global backend selection."""
    prior = kernels.active_backend()
    try:
        yield
    finally:
        kernels.set_backend(prior)


def _stream(size: int, seed: int = 123) -> np.ndarray:
    """A skewed stream salted with int64 extremes and zero."""
    rng = np.random.default_rng(seed)
    values = (rng.zipf(1.3, size=size) % 500).astype(np.int64)
    if size >= 4:
        values[0] = I64.min
        values[1] = I64.max
        values[2] = 0
        values[size // 2] = I64.max
    return values


SAMPLERS = [
    pytest.param(
        lambda scheme, seed: SampleCountSketch(
            s1=16, s2=2, seed=seed, rng_scheme=scheme
        ),
        id="samplecount",
    ),
    pytest.param(
        lambda scheme, seed: SampleCountFastQuery(
            s1=16, s2=2, seed=seed, rng_scheme=scheme
        ),
        id="samplecount-fast",
    ),
    pytest.param(
        lambda scheme, seed: NaiveSamplingEstimator(
            s=24, seed=seed, rng_scheme=scheme
        ),
        id="naivesampling",
    ),
]


# ----------------------------------------------------------------------
# Counter-RNG primitives
# ----------------------------------------------------------------------
class TestCounterPrimitives:
    def test_key_derivation_deterministic_and_spread(self):
        keys = [kernels.counter_key(seed) for seed in range(64)]
        assert keys == [kernels.counter_key(seed) for seed in range(64)]
        assert len(set(keys)) == 64
        assert all(0 <= k < 2**64 for k in keys)

    def test_vectorised_u64_matches_scalar(self):
        key = kernels.counter_key(7)
        rng = np.random.default_rng(0)
        pos = rng.integers(0, 2**62, size=257, dtype=np.int64)
        drw = rng.integers(0, 2**20, size=257, dtype=np.int64)
        vec = kernels.counter_u64(key, pos, drw)
        ref = [
            kernels.counter_u64_one(key, int(j), int(i))
            for j, i in zip(pos, drw)
        ]
        assert vec.dtype == np.uint64
        assert vec.tolist() == ref

    def test_vectorised_u01_matches_scalar_bitwise(self):
        key = kernels.counter_key(11)
        pos = np.arange(1, 300, dtype=np.int64)
        drw = np.zeros(pos.size, dtype=np.int64)
        vec = kernels.counter_u01(key, pos, drw)
        ref = np.array(
            [kernels.counter_u01_one(key, int(j), 0) for j in pos]
        )
        # Bit-for-bit float equality, not approximate.
        assert vec.view(np.uint64).tolist() == ref.view(np.uint64).tolist()

    def test_u01_lands_in_half_open_unit_interval(self):
        key = kernels.counter_key(3)
        pos = np.arange(10_000, dtype=np.int64)
        u = kernels.counter_u01(key, pos, np.zeros(pos.size, dtype=np.int64))
        assert float(u.min()) > 0.0
        assert float(u.max()) <= 1.0

    def test_draws_are_position_pure(self):
        """Draw i at position j never depends on evaluation order."""
        key = kernels.counter_key(5)
        forward = [kernels.counter_u64_one(key, j, j % 3) for j in range(50)]
        backward = [
            kernels.counter_u64_one(key, j, j % 3)
            for j in reversed(range(50))
        ]
        assert forward == backward[::-1]

    @pytest.mark.parametrize("backend", COMPILED)
    def test_bit_identity_across_backends(self, restore_backend, backend):
        key = kernels.counter_key(29)
        rng = np.random.default_rng(1)
        pos = rng.integers(0, 2**62, size=1025, dtype=np.int64)
        drw = rng.integers(0, 2**31, size=1025, dtype=np.int64)

        kernels.set_backend("numpy")
        u64_ref = kernels.counter_u64(key, pos, drw)
        u01_ref = kernels.counter_u01(key, pos, drw)

        kernels.set_backend(backend)
        assert (kernels.counter_u64(key, pos, drw) == u64_ref).all()
        u01 = kernels.counter_u01(key, pos, drw)
        assert (u01.view(np.uint64) == u01_ref.view(np.uint64)).all()


# ----------------------------------------------------------------------
# reservoir_chain kernel
# ----------------------------------------------------------------------
class TestReservoirChain:
    CASES = [
        (4, 4, 0, 1),
        (16, 16, 0, 5000),
        (16, 1000, 3, 5000),
        (128, 128, 0, 20_000),
        (1, 1, 0, 300),
    ]

    @pytest.mark.parametrize("backend", COMPILED)
    @pytest.mark.parametrize("k,offered,skip,m", CASES)
    def test_bit_identity_across_backends(
        self, restore_backend, backend, k, offered, skip, m
    ):
        key = kernels.counter_key(41)

        kernels.set_backend("numpy")
        acc_ref, slot_ref, skip_ref = kernels.reservoir_chain(
            key, k, offered, skip, m
        )

        kernels.set_backend(backend)
        acc, slot, skip_out = kernels.reservoir_chain(key, k, offered, skip, m)
        assert acc.tolist() == acc_ref.tolist()
        assert slot.tolist() == slot_ref.tolist()
        assert skip_out == skip_ref

    def test_split_batches_continue_the_chain(self):
        """One m-offer call == two calls split anywhere in the middle."""
        key = kernels.counter_key(43)
        k, offered, m = 32, 32, 8000
        acc_all, slot_all, skip_all = kernels.reservoir_chain(
            key, k, offered, 0, m
        )
        for cut in (1, 257, 4096, m - 1):
            a1, s1, sk1 = kernels.reservoir_chain(key, k, offered, 0, cut)
            a2, s2, sk2 = kernels.reservoir_chain(
                key, k, offered + cut, sk1, m - cut
            )
            merged_acc = a1.tolist() + (a2 + cut).tolist()
            merged_slot = s1.tolist() + s2.tolist()
            assert merged_acc == acc_all.tolist()
            assert merged_slot == slot_all.tolist()
            assert sk2 == skip_all

    def test_slots_in_range(self):
        key = kernels.counter_key(47)
        _, slots, _ = kernels.reservoir_chain(key, 7, 7, 0, 10_000)
        assert slots.size > 0
        assert int(slots.min()) >= 0
        assert int(slots.max()) < 7


# ----------------------------------------------------------------------
# sampler_segment_counts kernel
# ----------------------------------------------------------------------
def _brute_segment_counts(values, keys, starts, ends):
    out = np.zeros((len(starts), len(keys)), dtype=np.int64)
    index = {int(v): c for c, v in enumerate(keys.tolist())}
    for s, (lo, hi) in enumerate(zip(starts.tolist(), ends.tolist())):
        for v in values[lo:hi].tolist():
            c = index.get(int(v))
            if c is not None:
                out[s, c] += 1
    return out


class TestSegmentCounts:
    def _case(self, seed: int, disjoint: bool):
        rng = np.random.default_rng(seed)
        values = rng.integers(-50, 50, size=2000, dtype=np.int64)
        values[0] = I64.min
        values[-1] = I64.max
        keys = np.unique(
            np.concatenate(
                [
                    rng.choice(values, size=17),
                    np.array([I64.min, I64.max, 0], dtype=np.int64),
                ]
            )
        )
        if disjoint:
            cuts = np.sort(rng.choice(2001, size=12, replace=False))
            starts = cuts[:-1:2].astype(np.int64)
            ends = cuts[1::2].astype(np.int64)
        else:
            starts = rng.integers(0, 1500, size=6, dtype=np.int64)
            ends = starts + rng.integers(0, 500, size=6).astype(np.int64)
        return values, keys, starts, ends

    @pytest.mark.parametrize("disjoint", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_bruteforce(self, seed, disjoint):
        values, keys, starts, ends = self._case(seed, disjoint)
        got = kernels.sampler_segment_counts(values, keys, starts, ends)
        assert got.tolist() == _brute_segment_counts(
            values, keys, starts, ends
        ).tolist()

    @pytest.mark.parametrize("backend", COMPILED)
    @pytest.mark.parametrize("disjoint", [True, False])
    def test_bit_identity_across_backends(
        self, restore_backend, backend, disjoint
    ):
        values, keys, starts, ends = self._case(9, disjoint)

        kernels.set_backend("numpy")
        ref = kernels.sampler_segment_counts(values, keys, starts, ends)

        kernels.set_backend(backend)
        got = kernels.sampler_segment_counts(values, keys, starts, ends)
        assert got.tolist() == ref.tolist()

    def test_empty_inputs(self):
        empty_i64 = np.empty(0, dtype=np.int64)
        out = kernels.sampler_segment_counts(
            empty_i64, empty_i64, empty_i64, empty_i64
        )
        assert out.shape == (0, 0)


# ----------------------------------------------------------------------
# Sampler ingest-route equivalence (scalar == batched == backends)
# ----------------------------------------------------------------------
class TestSamplerRouteEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("build", SAMPLERS)
    def test_scalar_matches_batched(self, build, scheme):
        values = _stream(2000)
        a = build(scheme, 17)
        for v in values.tolist():
            a.insert(v)
        b = build(scheme, 17)
        b.update_from_stream(values)
        assert a.to_dict() == b.to_dict()
        assert a.estimate() == b.estimate()

    @pytest.mark.parametrize("chunk", [1, 7, 255, 256, 257, 1999])
    @pytest.mark.parametrize("build", SAMPLERS)
    def test_chunked_batches_match_single(self, build, chunk):
        """Any chunking lands on the same state (event-chunk boundary
        sizes 255/256/257 straddle the walker's internal chunk)."""
        values = _stream(2000, seed=5)
        a = build("counter", 23)
        a.update_from_stream(values)
        b = build("counter", 23)
        for lo in range(0, values.size, chunk):
            b.update_from_stream(values[lo : lo + chunk])
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("backend", COMPILED)
    @pytest.mark.parametrize("build", SAMPLERS)
    def test_backends_bit_identical(self, restore_backend, build, backend):
        values = _stream(3000, seed=7)

        kernels.set_backend("numpy")
        a = build("counter", 31)
        a.update_from_stream(values)

        kernels.set_backend(backend)
        b = build("counter", 31)
        b.update_from_stream(values)
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("build", SAMPLERS)
    def test_frequencies_match_expanded_stream(self, build):
        rng = np.random.default_rng(13)
        vals = np.unique(rng.integers(0, 40, size=60, dtype=np.int64))
        cnts = rng.integers(1, 90, size=vals.size, dtype=np.int64)
        cnts[0] = 200  # exercises the huge-count repeat path below

        a = build("counter", 37)
        a._EXPAND_MAX = 128  # force the arithmetic-repeat route for cnts[0]
        a.update_from_frequencies(vals, cnts)

        b = build("counter", 37)
        b.update_from_stream(np.repeat(vals, cnts))
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("build", SAMPLERS)
    def test_seed_changes_state(self, build, scheme):
        values = _stream(1200, seed=3)
        a = build(scheme, 1)
        b = build(scheme, 2)
        a.update_from_stream(values)
        b.update_from_stream(values)
        assert a.to_dict() != b.to_dict()


# ----------------------------------------------------------------------
# Snapshot round-trips and legacy migration
# ----------------------------------------------------------------------
class TestSnapshotRoundTrips:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("build", SAMPLERS)
    def test_roundtrip_then_continue(
        self, restore_backend, build, scheme, backend
    ):
        kernels.set_backend(backend)
        first, second = _stream(1500, seed=19), _stream(1500, seed=20)

        live = build(scheme, 53)
        live.update_from_stream(first)
        revived = type(live).from_dict(live.to_dict())
        assert revived.to_dict() == live.to_dict()

        live.update_from_stream(second)
        revived.update_from_stream(second)
        assert revived.to_dict() == live.to_dict()
        assert revived.estimate() == live.estimate()

    @pytest.mark.parametrize("build", SAMPLERS)
    def test_legacy_pcg64_snapshot_loads_and_continues(self, build):
        """Snapshots written before the scheme field existed carry only
        the pcg64 generator state; they must load onto the pcg64 scheme
        and continue draw for draw."""
        first, second = _stream(1500, seed=21), _stream(1500, seed=22)
        live = build("pcg64", 59)
        live.update_from_stream(first)

        legacy = live.to_dict()
        legacy.pop("rng_scheme", None)
        if "reservoir" in legacy:
            legacy["reservoir"] = dict(legacy["reservoir"])
            legacy["reservoir"].pop("scheme", None)
            assert "rng" in legacy["reservoir"]
        else:
            assert "rng" in legacy

        revived = type(live).from_dict(legacy)
        assert getattr(revived, "rng_scheme", "pcg64") == "pcg64"

        live.update_from_stream(second)
        revived.update_from_stream(second)
        assert revived.estimate() == live.estimate()
        live_dict, revived_dict = live.to_dict(), revived.to_dict()
        assert revived_dict == live_dict

    @pytest.mark.parametrize("build", SAMPLERS)
    def test_counter_snapshot_carries_scheme_and_seed(self, build):
        live = build("counter", 61)
        live.update_from_stream(_stream(400, seed=2))
        payload = live.to_dict()
        inner = payload.get("reservoir", payload)
        scheme_key = "scheme" if "reservoir" in payload else "rng_scheme"
        assert inner[scheme_key] == "counter"
        assert "seed" in inner
        assert "rng" not in inner


# ----------------------------------------------------------------------
# Reservoir primitive (shared by naivesampling)
# ----------------------------------------------------------------------
class TestReservoirOfferArray:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_offer_array_matches_scalar_offers(self, scheme):
        values = _stream(4000, seed=29)
        a = ReservoirSample(32, seed=71, scheme=scheme)
        for v in values.tolist():
            a.offer(v)
        b = ReservoirSample(32, seed=71, scheme=scheme)
        b.offer_array(values)
        assert a.to_dict() == b.to_dict()

    def test_offer_repeated_matches_expansion(self):
        a = ReservoirSample(16, seed=73, scheme="counter")
        a.offer_repeated(9, 3000)
        b = ReservoirSample(16, seed=73, scheme="counter")
        b.offer_array(np.full(3000, 9, dtype=np.int64))
        assert a.to_dict() == b.to_dict()
