"""Unit tests for the k-wise independent hash families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import (
    MERSENNE_PRIME_31,
    PolynomialHashFamily,
    SignHashFamily,
)


class TestPolynomialHashFamily:
    def test_shape_of_hash_one(self):
        fam = PolynomialHashFamily(count=7, seed=0)
        out = fam.hash_one(42)
        assert out.shape == (7,)

    def test_shape_of_hash_many(self):
        fam = PolynomialHashFamily(count=5, seed=0)
        out = fam.hash_many(np.arange(11))
        assert out.shape == (5, 11)

    def test_values_in_field(self):
        fam = PolynomialHashFamily(count=64, seed=3)
        out = fam.hash_many(np.arange(1000))
        assert int(out.max()) < MERSENNE_PRIME_31

    def test_deterministic_given_seed(self):
        a = PolynomialHashFamily(count=8, seed=99)
        b = PolynomialHashFamily(count=8, seed=99)
        assert np.array_equal(a.hash_many(np.arange(50)), b.hash_many(np.arange(50)))

    def test_different_seeds_differ(self):
        a = PolynomialHashFamily(count=8, seed=1)
        b = PolynomialHashFamily(count=8, seed=2)
        assert not np.array_equal(a.hash_many(np.arange(50)), b.hash_many(np.arange(50)))

    def test_hash_many_matches_hash_one(self):
        fam = PolynomialHashFamily(count=6, seed=5)
        values = np.array([0, 1, 17, 12345, 2**30])
        many = fam.hash_many(values)
        for j, v in enumerate(values):
            assert np.array_equal(many[:, j], fam.hash_one(int(v)))

    def test_default_independence_is_four(self):
        assert PolynomialHashFamily(count=1).independence == 4

    def test_degree_one_family(self):
        fam = PolynomialHashFamily(count=3, independence=1, seed=0)
        # Degree-0 polynomials are constants: same value everywhere.
        out = fam.hash_many(np.arange(10))
        assert np.all(out == out[:, :1])

    def test_rejects_value_outside_field(self):
        fam = PolynomialHashFamily(count=2, seed=0)
        with pytest.raises(ValueError, match="outside"):
            fam.hash_one(MERSENNE_PRIME_31)

    def test_rejects_array_outside_field(self):
        fam = PolynomialHashFamily(count=2, seed=0)
        with pytest.raises(ValueError, match="outside"):
            fam.hash_many(np.array([1, MERSENNE_PRIME_31 + 5], dtype=np.uint64))

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError, match="count"):
            PolynomialHashFamily(count=0)

    def test_rejects_bad_independence(self):
        with pytest.raises(ValueError, match="independence"):
            PolynomialHashFamily(count=1, independence=0)

    def test_rejects_2d_input(self):
        fam = PolynomialHashFamily(count=2, seed=0)
        with pytest.raises(ValueError, match="one-dimensional"):
            fam.hash_many(np.zeros((2, 2), dtype=np.uint64))

    def test_empty_input(self):
        fam = PolynomialHashFamily(count=4, seed=0)
        out = fam.hash_many(np.array([], dtype=np.uint64))
        assert out.shape == (4, 0)

    def test_roundtrip_serialisation(self):
        fam = PolynomialHashFamily(count=5, seed=7)
        clone = PolynomialHashFamily.from_dict(fam.to_dict())
        assert clone == fam
        assert np.array_equal(clone.hash_many(np.arange(20)), fam.hash_many(np.arange(20)))

    def test_from_dict_validates_shape(self):
        payload = PolynomialHashFamily(count=2, seed=0).to_dict()
        payload["count"] = 3
        with pytest.raises(ValueError, match="shape"):
            PolynomialHashFamily.from_dict(payload)

    def test_coefficients_read_only(self):
        fam = PolynomialHashFamily(count=2, seed=0)
        with pytest.raises(ValueError):
            fam.coefficients[0, 0] = 0

    def test_equality_against_other_type(self):
        assert PolynomialHashFamily(count=1, seed=0) != "not a family"

    def test_uniformity_rough(self):
        # One function evaluated at many points should fill the field
        # roughly uniformly: check mean is near p/2.
        fam = PolynomialHashFamily(count=1, seed=11)
        out = fam.hash_many(np.arange(200_000)).astype(np.float64)
        assert abs(out.mean() / MERSENNE_PRIME_31 - 0.5) < 0.01

    def test_pairwise_collision_rate(self):
        # Distinct inputs collide with probability ~1/p under a random
        # polynomial; with 2000 inputs expect essentially zero collisions.
        fam = PolynomialHashFamily(count=1, seed=13)
        out = fam.hash_many(np.arange(2000))[0]
        assert np.unique(out).size >= 1999


class TestSignHashFamily:
    def test_signs_are_plus_minus_one(self):
        fam = SignHashFamily(count=16, seed=0)
        signs = fam.signs_many(np.arange(500))
        assert set(np.unique(signs).tolist()) <= {-1, 1}

    def test_signs_one_matches_many(self):
        fam = SignHashFamily(count=9, seed=4)
        many = fam.signs_many(np.arange(30))
        for v in range(30):
            assert np.array_equal(many[:, v], fam.signs_one(v))

    def test_deterministic_given_seed(self):
        a = SignHashFamily(count=8, seed=21)
        b = SignHashFamily(count=8, seed=21)
        assert np.array_equal(a.signs_many(np.arange(100)), b.signs_many(np.arange(100)))

    def test_balance(self):
        # E[eps(v)] = 0: the empirical mean over many values is small.
        fam = SignHashFamily(count=1, seed=2)
        signs = fam.signs_many(np.arange(100_000)).astype(np.float64)
        assert abs(signs.mean()) < 0.02

    def test_pairwise_decorrelation(self):
        # E[eps(u) eps(v)] = 0 for u != v: check the empirical
        # correlation of sign vectors at shifted inputs.
        fam = SignHashFamily(count=1, seed=8)
        signs = fam.signs_many(np.arange(100_000)).astype(np.float64)[0]
        corr = float(np.mean(signs[:-1] * signs[1:]))
        assert abs(corr) < 0.02

    def test_fourwise_product_mean(self):
        # E[eps(a)eps(b)eps(c)eps(d)] = 0 for distinct a,b,c,d: average
        # the 4-product over many functions at fixed distinct points.
        fam = SignHashFamily(count=20_000, seed=5)
        pts = fam.signs_many(np.array([3, 11, 27, 64])).astype(np.float64)
        prod = pts[:, 0] * pts[:, 1] * pts[:, 2] * pts[:, 3]
        assert abs(prod.mean()) < 0.03

    def test_roundtrip_serialisation(self):
        fam = SignHashFamily(count=6, seed=9)
        clone = SignHashFamily.from_dict(fam.to_dict())
        assert clone == fam
        assert np.array_equal(clone.signs_many(np.arange(40)), fam.signs_many(np.arange(40)))

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="payload"):
            SignHashFamily.from_dict({"kind": "other"})

    def test_count_property(self):
        assert SignHashFamily(count=12, seed=0).count == 12

    def test_independence_property(self):
        assert SignHashFamily(count=1, seed=0, independence=2).independence == 2

    def test_equality_against_other_type(self):
        assert SignHashFamily(count=1, seed=0) != 42
