"""Unit tests for the tug-of-war (AMS) sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import self_join_size
from repro.core.tugofwar import TugOfWarSketch


def loaded(stream, s1=64, s2=5, seed=7):
    sk = TugOfWarSketch(s1=s1, s2=s2, seed=seed)
    sk.update_from_stream(np.asarray(stream, dtype=np.int64))
    return sk


class TestBasics:
    def test_empty_estimate_zero(self):
        assert TugOfWarSketch(s1=8, seed=0).estimate() == 0.0

    def test_single_value_exact(self):
        # All mass on one value: Z = ±f exactly, so X = f^2 = SJ for
        # every basic estimator — the estimate is exact.
        sk = TugOfWarSketch(s1=16, s2=3, seed=1)
        for _ in range(37):
            sk.insert(5)
        assert sk.estimate() == pytest.approx(37.0**2)

    def test_counters_move_by_signs(self):
        sk = TugOfWarSketch(s1=4, s2=1, seed=0)
        sk.insert(9)
        assert set(np.unique(sk.counters).tolist()) <= {-1, 1}

    def test_n_tracks_inserts_and_deletes(self):
        sk = TugOfWarSketch(s1=4, seed=0)
        sk.insert(1)
        sk.insert(2)
        sk.delete(1)
        assert sk.n == 1

    def test_memory_words(self):
        assert TugOfWarSketch(s1=8, s2=3, seed=0).memory_words == 24

    def test_error_and_confidence_accessors(self):
        sk = TugOfWarSketch(s1=64, s2=4, seed=0)
        assert sk.error_bound() == pytest.approx(0.5)
        assert sk.confidence() == pytest.approx(1 - 0.25)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            TugOfWarSketch(s1=0)

    def test_delete_from_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TugOfWarSketch(s1=2, seed=0).delete(1)


class TestLinearity:
    def test_insert_then_delete_restores_state(self):
        sk = TugOfWarSketch(s1=32, s2=2, seed=3)
        sk.insert(4)
        sk.insert(7)
        before = sk.counters.copy()
        sk.insert(12345)
        sk.delete(12345)
        assert np.array_equal(sk.counters, before)
        assert sk.n == 2

    def test_batch_equals_elementwise(self, small_stream):
        a = loaded(small_stream, seed=11)
        b = TugOfWarSketch(s1=64, s2=5, seed=11)
        for v in small_stream.tolist():
            b.insert(int(v))
        assert np.array_equal(a.counters, b.counters)
        assert a.estimate() == b.estimate()

    def test_update_with_count(self):
        a = TugOfWarSketch(s1=16, seed=5)
        a.update(9, 10)
        b = TugOfWarSketch(s1=16, seed=5)
        for _ in range(10):
            b.insert(9)
        assert np.array_equal(a.counters, b.counters)

    def test_update_negative_count_deletes(self):
        sk = TugOfWarSketch(s1=16, seed=5)
        sk.update(3, 5)
        sk.update(3, -5)
        assert np.all(sk.counters == 0)
        assert sk.n == 0

    def test_update_zero_count_noop(self):
        sk = TugOfWarSketch(s1=4, seed=0)
        sk.update(1, 0)
        assert sk.n == 0

    def test_update_below_zero_raises(self):
        sk = TugOfWarSketch(s1=4, seed=0)
        with pytest.raises(ValueError, match="negative"):
            sk.update(1, -1)

    def test_permutation_invariance(self, small_stream, rng):
        a = loaded(small_stream, seed=2)
        shuffled = small_stream.copy()
        rng.shuffle(shuffled)
        b = loaded(shuffled, seed=2)
        assert np.array_equal(a.counters, b.counters)

    def test_merge_is_union(self, small_stream):
        left, right = small_stream[:1000], small_stream[1000:]
        a = loaded(left, seed=9)
        b = loaded(right, seed=9)
        merged = a.merge(b)
        full = loaded(small_stream, seed=9)
        assert np.array_equal(merged.counters, full.counters)
        assert merged.n == full.n

    def test_merge_requires_same_seed(self, small_stream):
        a = loaded(small_stream, seed=1)
        b = loaded(small_stream, seed=2)
        with pytest.raises(ValueError, match="hash families"):
            a.merge(b)

    def test_merge_requires_same_shape(self):
        a = TugOfWarSketch(s1=4, s2=1, seed=0)
        b = TugOfWarSketch(s1=2, s2=2, seed=0)
        with pytest.raises(ValueError, match="shape"):
            a.merge(b)

    def test_merge_rejects_other_types(self):
        with pytest.raises(TypeError):
            TugOfWarSketch(s1=2, seed=0).merge("nope")

    def test_update_from_frequencies_validates(self):
        sk = TugOfWarSketch(s1=2, seed=0)
        with pytest.raises(ValueError, match="equal-length"):
            sk.update_from_frequencies([1, 2], [1])


class TestAccuracy:
    def test_estimate_close_on_skewed_stream(self, small_stream):
        exact = self_join_size(small_stream)
        sk = loaded(small_stream, s1=400, s2=5, seed=42)
        assert sk.estimate() == pytest.approx(exact, rel=0.25)

    def test_estimate_close_on_uniform_stream(self, uniform_stream):
        exact = self_join_size(uniform_stream)
        sk = loaded(uniform_stream, s1=400, s2=5, seed=43)
        assert sk.estimate() == pytest.approx(exact, rel=0.25)

    def test_unbiasedness_over_seeds(self):
        # Average of many independent single-estimator sketches should
        # approach the exact SJ.
        stream = np.array([1] * 30 + [2] * 20 + list(range(10, 60)), dtype=np.int64)
        exact = self_join_size(stream)
        estimates = []
        for seed in range(300):
            sk = TugOfWarSketch(s1=1, s2=1, seed=seed)
            sk.update_from_stream(stream)
            estimates.append(sk.estimate())
        assert np.mean(estimates) == pytest.approx(exact, rel=0.2)

    def test_theorem22_bound_holds_with_margin(self, small_stream):
        # With s1 = 1024 the guaranteed error is 4/32 = 12.5%; a single
        # seeded run should comfortably satisfy it.
        exact = self_join_size(small_stream)
        sk = loaded(small_stream, s1=1024, s2=5, seed=0)
        assert abs(sk.estimate() - exact) / exact <= sk.error_bound()

    def test_estimate_nonnegative(self, rng):
        for seed in range(10):
            sk = loaded(rng.integers(0, 30, size=100), s1=8, s2=3, seed=seed)
            assert sk.estimate() >= 0.0

    def test_mean_and_median_variants(self, small_stream):
        sk = loaded(small_stream, s1=64, s2=5, seed=6)
        exact = self_join_size(small_stream)
        assert sk.estimate_mean() == pytest.approx(np.mean(sk.basic_estimators()))
        assert sk.estimate_median() == pytest.approx(np.median(sk.basic_estimators()))
        # All three estimate the same quantity, loosely.
        assert sk.estimate_mean() == pytest.approx(exact, rel=1.0)


class TestInnerProduct:
    def test_join_estimate_roughly_correct(self, rng):
        a = rng.integers(0, 40, size=2000)
        b = rng.integers(0, 40, size=2000)
        from repro.core.frequency import join_size

        exact = join_size(a, b)
        x = loaded(a, s1=300, s2=5, seed=77)
        y = loaded(b, s1=300, s2=5, seed=77)
        assert x.inner_product(y) == pytest.approx(exact, rel=0.3)
        assert x.inner_product_mean(y) == pytest.approx(exact, rel=0.3)

    def test_inner_product_with_self_matches_estimate(self, small_stream):
        sk = loaded(small_stream, seed=1)
        assert sk.inner_product(sk) == pytest.approx(sk.estimate())

    def test_inner_product_requires_shared_seed(self, small_stream):
        a = loaded(small_stream, seed=1)
        b = loaded(small_stream, seed=2)
        with pytest.raises(ValueError, match="hash families"):
            a.inner_product(b)


class TestPersistence:
    def test_roundtrip(self, small_stream):
        sk = loaded(small_stream, seed=14)
        clone = TugOfWarSketch.from_dict(sk.to_dict())
        assert np.array_equal(clone.counters, sk.counters)
        assert clone.estimate() == sk.estimate()
        assert clone.n == sk.n

    def test_roundtrip_keeps_updating(self, small_stream):
        sk = loaded(small_stream, seed=14)
        clone = TugOfWarSketch.from_dict(sk.to_dict())
        sk.insert(3)
        clone.insert(3)
        assert np.array_equal(clone.counters, sk.counters)

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="payload"):
            TugOfWarSketch.from_dict({"kind": "other"})

    def test_from_dict_validates_counter_shape(self):
        payload = TugOfWarSketch(s1=2, s2=2, seed=0).to_dict()
        payload["z"] = [0, 0]
        with pytest.raises(ValueError, match="shape"):
            TugOfWarSketch.from_dict(payload)

    def test_copy_independent(self):
        sk = TugOfWarSketch(s1=4, seed=0)
        sk.insert(1)
        cp = sk.copy()
        cp.insert(2)
        assert cp.n == 2 and sk.n == 1

    def test_counters_view_read_only(self):
        sk = TugOfWarSketch(s1=4, seed=0)
        with pytest.raises(ValueError):
            sk.counters[0] = 5
