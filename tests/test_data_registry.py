"""Tests for the Table 1 data-set registry.

The scaled-down checks run on every data set; the full-size
characteristic checks (paper n / t / SJ within tolerance) run on the
smaller data sets only, to keep the default suite fast.  The table-1
benchmark covers all 13 at full scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import distinct_values, self_join_size
from repro.data.registry import DATASETS, load_dataset


class TestRegistryStructure:
    def test_thirteen_datasets(self):
        assert len(DATASETS) == 13

    def test_paper_order_and_figures(self):
        figures = [spec.figure for spec in DATASETS.values()]
        assert figures == list(range(2, 15))

    def test_kinds(self):
        kinds = {spec.kind for spec in DATASETS.values()}
        assert kinds == {"statistical", "text", "geometric", "artificial"}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown data set"):
            load_dataset("zipf9.9")

    def test_scale_validation(self):
        with pytest.raises(ValueError, match="scale"):
            load_dataset("poisson", scale=0.0)
        with pytest.raises(ValueError, match="scale"):
            load_dataset("poisson", scale=1.5)


@pytest.mark.parametrize("name", list(DATASETS))
class TestEveryDatasetScaled:
    def test_loads_at_small_scale(self, name):
        spec = DATASETS[name]
        values = load_dataset(name, rng=0, scale=0.02)
        assert values.dtype == np.int64
        assert values.ndim == 1
        expected = max(1, round(spec.paper_length * 0.02))
        assert abs(values.size - expected) <= 1

    def test_deterministic_given_seed(self, name):
        a = load_dataset(name, rng=7, scale=0.01)
        b = load_dataset(name, rng=7, scale=0.01)
        assert np.array_equal(a, b)

    def test_seeds_differ(self, name):
        a = load_dataset(name, rng=1, scale=0.01)
        b = load_dataset(name, rng=2, scale=0.01)
        assert not np.array_equal(a, b)


#: Data sets small enough to check full-scale characteristics in tests.
_FULL_CHECK = ["mf2", "mf3", "poisson", "path", "genesis", "selfsimilar"]


@pytest.mark.parametrize("name", _FULL_CHECK)
class TestFullScaleCharacteristics:
    def test_length_matches_paper(self, name):
        spec = DATASETS[name]
        values = load_dataset(name, rng=0)
        assert values.size == spec.paper_length

    def test_self_join_near_paper(self, name):
        spec = DATASETS[name]
        values = load_dataset(name, rng=0)
        measured = self_join_size(values)
        assert measured == pytest.approx(spec.paper_self_join, rel=0.5), (
            f"{name}: measured SJ {measured:.3g} vs paper {spec.paper_self_join:.3g}"
        )

    def test_domain_size_same_order(self, name):
        spec = DATASETS[name]
        values = load_dataset(name, rng=0)
        measured = distinct_values(values)
        assert spec.paper_domain / 3 <= measured <= spec.paper_domain * 3, (
            f"{name}: measured domain {measured} vs paper {spec.paper_domain}"
        )


class TestPathExact:
    def test_path_characteristics_exact(self):
        values = load_dataset("path", rng=0)
        assert values.size == 40_800
        assert distinct_values(values) == 40_001
        assert self_join_size(values) == 680_000
