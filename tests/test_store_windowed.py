"""The windowed sketch store: routing, merge-on-query, retention, snapshots.

The tentpole contract of ISSUE 2: a time-bucketed store that absorbs
timestamped insert/delete batches (out-of-order included) and answers
estimates over arbitrary bucket-aligned windows, with merge-on-query
**bit-identical** to a monolithic sketch built over the same window.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.frequency import FrequencyVector, self_join_size
from repro.core.tugofwar import TugOfWarSketch
from repro.engine import MergeUnsupportedError, SketchPayloadError
from repro.engine.registry import UnknownSketchKindError
from repro.store import SketchSpec, WindowAlignmentError, WindowedSketchStore

TW_SPEC = SketchSpec("tugofwar", {"s1": 32, "s2": 3, "seed": 7})


@pytest.fixture
def events(rng):
    """5,000 timestamped events over [0, 200), shuffled out of order."""
    ts = rng.integers(0, 200, size=5000)
    values = (rng.zipf(1.4, size=5000) % 100).astype(np.int64)
    return ts, values


def monolithic(ts, values, t0, t1, spec=TW_SPEC):
    """Reference sketch built over exactly the window's events."""
    sketch = spec.build()
    mask = (ts >= t0) & (ts < t1)
    sketch.update_from_stream(values[mask])
    return sketch


class TestSketchSpec:
    def test_build_and_flags(self):
        sketch = TW_SPEC.build()
        assert isinstance(sketch, TugOfWarSketch)
        assert TW_SPEC.is_mergeable and TW_SPEC.is_linear

    def test_same_spec_sketches_merge(self):
        a, b = TW_SPEC.build(), TW_SPEC.build()
        a.insert(1)
        b.insert(2)
        assert a.merge(b).n == 2

    def test_non_mergeable_kind_flags(self):
        spec = SketchSpec("naivesampling", {"s": 8, "seed": 0})
        assert not spec.is_mergeable and not spec.is_linear

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(UnknownSketchKindError):
            SketchSpec("nope", {})

    def test_mergeable_kind_without_seed_gets_one_pinned(self):
        # A None/absent seed on a mergeable kind would make every
        # build() draw its own hash family and no two buckets could
        # ever merge; the spec pins fresh entropy once instead.
        spec = SketchSpec("tugofwar", {"s1": 8, "s2": 2})
        assert spec.params["seed"] is not None
        a, b = spec.build(), spec.build()
        a.insert(1)
        b.insert(2)
        assert a.merge(b).n == 2
        explicit = SketchSpec("tugofwar", {"s1": 8, "s2": 2, "seed": None})
        assert explicit.params["seed"] is not None
        # ... and the pinned seed survives serialisation.
        clone = SketchSpec.from_dict(spec.to_dict())
        assert clone.params["seed"] == spec.params["seed"]

    def test_round_trip(self):
        clone = SketchSpec.from_dict(TW_SPEC.to_dict())
        assert clone == TW_SPEC

    def test_bad_payload(self):
        with pytest.raises(SketchPayloadError):
            SketchSpec.from_dict({"params": {}})


class TestRoutingAndWindows:
    def test_out_of_order_ingest_routes_by_timestamp(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)  # arbitrary arrival order
        assert store.span_count == 20
        assert store.coverage == (0, 200)

    def test_window_query_bit_identical_to_monolithic(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)
        for t0, t1 in ((0, 200), (50, 120), (0, 10), (190, 200)):
            window = store.query(t0, t1)
            mono = monolithic(ts, values, t0, t1)
            assert np.array_equal(window.counters, mono.counters), (t0, t1)
            assert window.n == mono.n

    def test_incremental_batches_equal_single_batch(self, events):
        ts, values = events
        one = WindowedSketchStore(TW_SPEC, bucket_width=10)
        one.ingest(ts, values)
        many = WindowedSketchStore(TW_SPEC, bucket_width=10)
        for lo in range(0, ts.size, 613):  # uneven batch edges
            many.ingest(ts[lo : lo + 613], values[lo : lo + 613])
        assert np.array_equal(
            one.query(0, 200).counters, many.query(0, 200).counters
        )

    def test_threaded_ingest_bit_identical_to_serial(self, events):
        ts, values = events
        serial = WindowedSketchStore(TW_SPEC, bucket_width=10)
        serial.ingest(ts, values)
        threaded = WindowedSketchStore(TW_SPEC, bucket_width=10)
        threaded.ingest(ts, values, max_workers=4)
        assert serial.to_dict() == threaded.to_dict()

    def test_threaded_ingest_with_deletes_matches_serial(self, events):
        # Net-negative buckets cannot go through delta-build (an empty
        # delta rejects them); the threaded path must still accept any
        # batch the serial path accepts, bit-identically.
        ts, values = events
        serial = WindowedSketchStore(TW_SPEC, bucket_width=10)
        threaded = WindowedSketchStore(TW_SPEC, bucket_width=10)
        for store in (serial, threaded):
            store.ingest(ts, values)
        delete_ts = ts[:50]
        delete_values = values[:50]
        serial.ingest(delete_ts, delete_values, counts=np.full(50, -1))
        threaded.ingest(
            delete_ts, delete_values, counts=np.full(50, -1), max_workers=4
        )
        assert serial.to_dict() == threaded.to_dict()

    def test_descending_single_event_ingest_keeps_spans_sorted(self):
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        for t in range(190, -10, -10):
            store.ingest([t], [t // 10])
        assert store.spans == [(t, t + 10) for t in range(0, 200, 10)]

    def test_signed_counts_apply_deletes(self):
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest([5, 5, 15], [1, 1, 2], counts=[3, -1, 4])
        reference = TW_SPEC.build()
        reference.update_from_frequencies([1, 2], [2, 4])
        assert np.array_equal(store.query(0, 20).counters, reference.counters)

    def test_cross_bucket_delete_rejected_with_bucket_context(self):
        # Retraction semantics: a delete carries the timestamp of the
        # insert it reverses.  Routed anywhere else, the target bucket
        # never saw the occurrence and the rejection names the bucket.
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest([1], [7])
        with pytest.raises(ValueError, match=r"bucket span \[10, 20\)"):
            store.ingest([15], [7], counts=[-1])
        with pytest.raises(ValueError, match=r"bucket span"):
            threaded = WindowedSketchStore(TW_SPEC, bucket_width=10)
            threaded.ingest([1], [7])
            threaded.ingest([15], [7], counts=[-1], max_workers=2)
        # routed to the insert's bucket, the same delete is fine
        store.ingest([5], [7], counts=[-1])
        assert store.query(0, 10, align="outer").n == 0

    def test_deletes_into_sampler_kind_wrapped(self):
        # Insertion-only kinds reject deletion counts with
        # NotImplementedError; the store's ingest contract is a
        # uniform bucket-named ValueError.
        store = WindowedSketchStore(
            SketchSpec("naivesampling", {"s": 8, "seed": 0}), bucket_width=10
        )
        with pytest.raises(ValueError, match=r"bucket span \[0, 10\)"):
            store.ingest([2], [7], counts=[-1])

    def test_unmatched_delete_on_frequency_kind_wrapped(self):
        # The exact kind signals unmatched deletes with KeyError; the
        # store converts that to its uniform bucket-named ValueError.
        store = WindowedSketchStore(SketchSpec("frequency"), bucket_width=10)
        store.ingest([1], [7])
        with pytest.raises(ValueError, match=r"bucket span \[10, 20\)"):
            store.ingest([15], [7], counts=[-1])

    def test_negative_timestamps_and_origin(self):
        store = WindowedSketchStore(TW_SPEC, bucket_width=10, origin=-30)
        store.ingest([-30, -21, -1], [1, 2, 3])
        assert store.coverage == (-30, 0)
        mono = TW_SPEC.build()
        mono.update_from_stream(np.array([1, 2], dtype=np.int64))
        assert np.array_equal(store.query(-30, -10).counters, mono.counters)

    def test_empty_window_of_data_returns_empty_sketch(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)
        sketch = store.query(1000, 1010)
        assert sketch.n == 0 and sketch.estimate() == 0.0

    def test_query_does_not_mutate_store(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)
        before = store.to_dict()
        window = store.query(0, 50)
        window.insert(42)  # mutate the returned sketch only
        assert store.to_dict() == before

    def test_mismatched_arrays_rejected(self):
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        with pytest.raises(ValueError, match="equal-length"):
            store.ingest([1, 2], [1])
        with pytest.raises(ValueError, match="counts"):
            store.ingest([1, 2], [1, 2], counts=[1])

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="bucket_width"):
            WindowedSketchStore(TW_SPEC, bucket_width=0)
        with pytest.raises(ValueError, match="retention_policy"):
            WindowedSketchStore(TW_SPEC, bucket_width=1, retention_policy="x")
        with pytest.raises(ValueError, match="retention_buckets"):
            WindowedSketchStore(TW_SPEC, bucket_width=1, retention_buckets=0)
        with pytest.raises(TypeError, match="SketchSpec"):
            WindowedSketchStore("tugofwar", bucket_width=1)


class TestAlignment:
    @pytest.fixture
    def store(self, events):
        ts, values = events
        st = WindowedSketchStore(TW_SPEC, bucket_width=10)
        st.ingest(ts, values)
        return st

    def test_strict_rejects_misaligned(self, store):
        with pytest.raises(WindowAlignmentError, match="not aligned"):
            store.query(5, 20)
        with pytest.raises(WindowAlignmentError, match="not aligned"):
            store.query(0, 25)

    def test_outer_expands_to_buckets(self, store, events):
        ts, values = events
        assert store.window_bounds(5, 25, align="outer") == (0, 30)
        window = store.query(5, 25, align="outer")
        mono = monolithic(ts, values, 0, 30)
        assert np.array_equal(window.counters, mono.counters)

    def test_empty_window_rejected(self, store):
        with pytest.raises(ValueError, match="empty window"):
            store.query(50, 50)

    def test_bad_align_value(self, store):
        with pytest.raises(ValueError, match="align"):
            store.query(0, 10, align="inner")


class TestRetention:
    def test_compact_preserves_covering_queries(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)
        full_before = store.query(0, 200).counters.copy()
        folded = store.compact(before=100)
        assert folded == 10
        assert store.span_count == 11  # one compacted span + 10 buckets
        assert np.array_equal(store.query(0, 200).counters, full_before)
        mono = monolithic(ts, values, 0, 100)
        assert np.array_equal(store.query(0, 100).counters, mono.counters)

    def test_query_splitting_compacted_span_raises(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)
        store.compact(before=100)
        with pytest.raises(WindowAlignmentError, match="compacted span"):
            store.query(50, 150)
        # outer expands over the span instead
        assert store.window_bounds(50, 150, align="outer") == (0, 150)

    def test_compact_requires_boundary(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)
        with pytest.raises(WindowAlignmentError, match="boundary"):
            store.compact(before=95)

    def test_compact_all(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)
        assert store.compact() == 20
        assert store.span_count == 1

    def test_threaded_late_arrivals_into_one_compacted_span(self, events):
        # Two bucket groups resolving to the same compacted span must
        # not race: jobs are grouped per span, so the threaded result
        # matches the serial one exactly.
        ts, values = events
        late_ts = np.array([15, 15, 85, 85, 42], dtype=np.int64)
        late_values = np.array([7, 8, 9, 7, 3], dtype=np.int64)
        serial = WindowedSketchStore(TW_SPEC, bucket_width=10)
        serial.ingest(ts, values)
        serial.compact(before=100)
        threaded = WindowedSketchStore.from_dict(serial.to_dict())
        serial.ingest(late_ts, late_values)
        threaded.ingest(late_ts, late_values, max_workers=4)
        assert serial.to_dict() == threaded.to_dict()

    def test_late_arrival_after_compaction_folds_into_span(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)
        store.compact(before=100)
        store.ingest([15], [77])  # older than the compaction horizon
        mono = monolithic(ts, values, 0, 100)
        mono.insert(77)
        assert np.array_equal(store.query(0, 100).counters, mono.counters)

    def test_evict_forgets_history(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)
        dropped = store.evict(before=100)
        assert dropped == 10
        mono = monolithic(ts, values, 100, 200)
        assert np.array_equal(store.query(0, 200).counters, mono.counters)

    def test_auto_retention_compact(self, events):
        ts, values = events
        store = WindowedSketchStore(
            TW_SPEC, bucket_width=10, retention_buckets=5
        )
        store.ingest(ts, values)
        # 20 buckets ingested, 5 hot: old ones folded into one span.
        assert store.span_count == 6
        assert np.array_equal(
            store.query(0, 200).counters,
            monolithic(ts, values, 0, 200).counters,
        )

    def test_auto_retention_evict(self, events):
        ts, values = events
        store = WindowedSketchStore(
            TW_SPEC, bucket_width=10, retention_buckets=5,
            retention_policy="evict",
        )
        store.ingest(ts, values)
        assert store.span_count == 5
        assert store.coverage == (150, 200)

    def test_compact_non_mergeable_kind_clear_error(self):
        spec = SketchSpec("naivesampling", {"s": 8, "seed": 0})
        store = WindowedSketchStore(spec, bucket_width=10)
        store.ingest([5, 15], [1, 2])
        with pytest.raises(TypeError, match="does not support merging"):
            store.compact()

    def test_compact_retention_rejected_for_non_mergeable_kind(self):
        # Validated at construction, not mid-ingest: auto-retention
        # fires after every batch and would otherwise explode with the
        # batch already applied.
        spec = SketchSpec("naivesampling", {"s": 8, "seed": 0})
        with pytest.raises(ValueError, match="evict"):
            WindowedSketchStore(spec, bucket_width=10, retention_buckets=2)
        # evict retention is the supported policy for samplers
        store = WindowedSketchStore(
            spec, bucket_width=10, retention_buckets=2,
            retention_policy="evict",
        )
        store.ingest([5, 15, 25, 35], [1, 2, 3, 4])
        assert store.span_count == 2


class TestNonMergeableKinds:
    def test_single_span_query_is_detached_copy(self, rng):
        spec = SketchSpec("naivesampling", {"s": 16, "seed": 3})
        store = WindowedSketchStore(spec, bucket_width=10)
        values = rng.integers(0, 50, size=500)
        store.ingest(np.full(500, 5), values)
        window = store.query(0, 10)
        expected = spec.build()
        expected.update_from_stream(values)
        assert window.to_dict() == expected.to_dict()
        window.insert(1)  # must not touch the stored bucket
        assert store.query(0, 10).to_dict() == expected.to_dict()

    def test_multi_span_query_raises_merge_unsupported(self, rng):
        spec = SketchSpec("samplecount", {"s1": 8, "s2": 2, "seed": 3})
        store = WindowedSketchStore(spec, bucket_width=10)
        store.ingest([5, 15], [1, 2])
        with pytest.raises(MergeUnsupportedError):
            store.query(0, 20)

    def test_frequency_kind_windows_are_exact(self, events):
        ts, values = events
        store = WindowedSketchStore(SketchSpec("frequency"), bucket_width=10)
        store.ingest(ts, values)
        window = store.query(30, 90)
        mask = (ts >= 30) & (ts < 90)
        assert isinstance(window, FrequencyVector)
        assert window.estimate() == float(self_join_size(values[mask]))


class TestSnapshotRestore:
    def test_round_trip_then_continued_ingestion_bit_identical(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts[:3000], values[:3000])
        payload = json.loads(json.dumps(store.to_dict()))  # through JSON
        restored = WindowedSketchStore.from_dict(payload)
        store.ingest(ts[3000:], values[3000:])
        restored.ingest(ts[3000:], values[3000:])
        assert store.to_dict() == restored.to_dict()

    def test_restore_preserves_config(self):
        store = WindowedSketchStore(
            TW_SPEC, bucket_width=7, origin=-3,
            retention_buckets=9, retention_policy="evict",
        )
        clone = WindowedSketchStore.from_dict(store.to_dict())
        assert clone.bucket_width == 7 and clone.origin == -3
        assert clone.retention_buckets == 9
        assert clone.retention_policy == "evict"

    def test_restore_rejects_wrong_kind(self):
        with pytest.raises(SketchPayloadError, match="windowed-store"):
            WindowedSketchStore.from_dict({"kind": "tugofwar"})
        with pytest.raises(SketchPayloadError):
            WindowedSketchStore.from_dict("not a mapping")

    def test_restore_rejects_missing_fields(self):
        payload = WindowedSketchStore(TW_SPEC, bucket_width=10).to_dict()
        del payload["bucket_width"]
        with pytest.raises(SketchPayloadError, match="corrupt"):
            WindowedSketchStore.from_dict(payload)

    def test_restore_wraps_validation_errors(self):
        # Constructor/structure ValueErrors must surface as payload
        # errors, not leak as bare ValueError.
        base = WindowedSketchStore(TW_SPEC, bucket_width=10)
        base.ingest([5], [1])
        for mutate in (
            lambda p: p.__setitem__("bucket_width", 0),
            lambda p: p.__setitem__("retention_policy", "weird"),
            lambda p: p.__setitem__("spans", [p["spans"][0][:2]]),
        ):
            payload = base.to_dict()
            mutate(payload)
            with pytest.raises(SketchPayloadError, match="corrupt"):
                WindowedSketchStore.from_dict(payload)

    def test_restore_keeps_unknown_kind_error_actionable(self):
        payload = WindowedSketchStore(TW_SPEC, bucket_width=10).to_dict()
        payload["spec"]["kind"] = "alien"
        with pytest.raises(UnknownSketchKindError, match="registered kinds"):
            WindowedSketchStore.from_dict(payload)

    def test_restore_rejects_overlapping_spans(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest(ts, values)
        payload = store.to_dict()
        payload["spans"][1][0] = payload["spans"][0][0]  # overlap span 0
        with pytest.raises(SketchPayloadError, match="overlap"):
            WindowedSketchStore.from_dict(payload)

    def test_restore_rejects_empty_span(self):
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        store.ingest([5], [1])
        payload = store.to_dict()
        payload["spans"][0][1] = payload["spans"][0][0]
        with pytest.raises(SketchPayloadError, match="empty span"):
            WindowedSketchStore.from_dict(payload)


class TestIntrospection:
    def test_spans_and_memory(self, events):
        ts, values = events
        store = WindowedSketchStore(TW_SPEC, bucket_width=10)
        assert store.coverage is None and len(store) == 0
        store.ingest(ts, values)
        assert store.spans[0] == (0, 10) and store.spans[-1] == (190, 200)
        assert store.memory_words == 20 * 32 * 3
        assert store.bucket_of(0) == 0 and store.bucket_of(-1) == -1
        assert store.bucket_bounds(3) == (30, 40)
