"""Serialization registry: round-trips, dispatch, and error handling.

Satellite requirement of ISSUE 1: every registered sketch kind must
survive ``dump_sketch`` -> JSON -> ``load_sketch`` with bit-identical
estimates, and unknown / corrupt payloads must raise clear errors.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.distinct import DistinctCountSketch
from repro.core.fkmoments import FkMomentSketch
from repro.core.frequency import FrequencyVector
from repro.core.moments import FrequencyMomentTracker
from repro.core.naivesampling import NaiveSamplingEstimator
from repro.core.samplecount import SampleCountFastQuery, SampleCountSketch
from repro.core.tugofwar import TugOfWarSketch
from repro.engine import (
    Sketch,
    SketchPayloadError,
    UnknownSketchKindError,
    dump_sketch,
    dumps_sketch,
    load_sketch,
    loads_sketch,
    sketch_class,
    sketch_kinds,
)


def _stream(n: int = 5000) -> np.ndarray:
    rng = np.random.default_rng(13)
    return (rng.zipf(1.4, size=n) % 700).astype(np.int64)


def build_all() -> dict[str, Sketch]:
    """One loaded instance of every registered kind."""
    stream = _stream()
    sketches: dict[str, Sketch] = {
        "tugofwar": TugOfWarSketch(64, 5, seed=3),
        "samplecount": SampleCountSketch(64, 5, seed=3),
        "samplecount-fast": SampleCountFastQuery(64, 5, seed=3),
        "moments": FrequencyMomentTracker(64, 5, seed=3),
        "naivesampling": NaiveSamplingEstimator(s=320, seed=3),
        "frequency": FrequencyVector(),
        "fk_moments": FkMomentSketch(k=3, s1=64, s2=5, seed=3),
        "f0": DistinctCountSketch(64, 5, seed=3),
    }
    for sketch in sketches.values():
        sketch.update_from_stream(stream)
    return sketches


class TestRoundTrips:
    def test_registry_covers_all_built_kinds(self):
        assert set(build_all()) == set(sketch_kinds())

    @pytest.mark.parametrize("kind", sorted(build_all()))
    def test_json_round_trip_preserves_estimate(self, kind):
        sketch = build_all()[kind]
        restored = loads_sketch(dumps_sketch(sketch))
        assert type(restored) is type(sketch)
        assert restored.kind == kind
        assert restored.estimate() == sketch.estimate()
        assert restored.memory_words == sketch.memory_words

    @pytest.mark.parametrize("kind", sorted(build_all()))
    def test_restored_sketch_continues_identically(self, kind):
        """RNG state round-trips: continued streaming matches bit for bit."""
        sketch = build_all()[kind]
        restored = load_sketch(json.loads(json.dumps(dump_sketch(sketch))))
        more = (np.random.default_rng(99).integers(0, 700, size=2000)).astype(np.int64)
        sketch.update_from_stream(more)
        restored.update_from_stream(more)
        assert restored.estimate() == sketch.estimate()

    def test_tugofwar_round_trip_counters_identical(self):
        sketch = build_all()["tugofwar"]
        restored = loads_sketch(dumps_sketch(sketch))
        assert np.array_equal(restored.counters, sketch.counters)

    def test_samplecount_round_trip_passes_invariants(self):
        for kind in ("samplecount", "samplecount-fast", "moments"):
            restored = loads_sketch(dumps_sketch(build_all()[kind]))
            restored.check_invariants()

    def test_sketch_class_lookup(self):
        assert sketch_class("tugofwar") is TugOfWarSketch
        with pytest.raises(UnknownSketchKindError):
            sketch_class("nope")


class TestErrors:
    def test_unknown_kind_raises_with_known_kinds_listed(self):
        with pytest.raises(UnknownSketchKindError) as err:
            load_sketch({"kind": "bloom-filter"})
        message = str(err.value)
        assert "bloom-filter" in message
        assert "tugofwar" in message  # lists what *is* registered

    def test_missing_kind_raises_payload_error(self):
        with pytest.raises(SketchPayloadError, match="no 'kind'"):
            load_sketch({"s1": 4})

    def test_non_mapping_payload_raises(self):
        with pytest.raises(SketchPayloadError, match="mapping"):
            load_sketch([1, 2, 3])

    def test_invalid_json_string_raises(self):
        with pytest.raises(SketchPayloadError, match="JSON"):
            loads_sketch("{not json")

    @pytest.mark.parametrize("kind", sorted(build_all()))
    def test_corrupt_body_raises_payload_error(self, kind):
        payload = dump_sketch(build_all()[kind])
        for key in list(payload):
            if key == "kind":
                continue
            broken = dict(payload)
            del broken[key]
            with pytest.raises(SketchPayloadError, match=kind):
                load_sketch(broken)
            break  # one missing field per kind is enough

    def test_truncated_counter_vector_raises(self):
        payload = dump_sketch(build_all()["tugofwar"])
        payload["z"] = payload["z"][:-3]
        with pytest.raises(SketchPayloadError):
            load_sketch(payload)

    def test_dumping_unregistered_sketch_raises(self):
        class Rogue(FrequencyVector):
            """A subclass that lies about its kind."""

            kind = "rogue"

        with pytest.raises(UnknownSketchKindError):
            dump_sketch(Rogue())
