"""Tests for the experiment harness and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.harness import (
    ALGORITHMS,
    accuracy_sweep,
    default_sample_sizes,
    default_scale,
    estimate_once,
)
from repro.experiments.metrics import (
    convergence_from_sweep,
    convergence_sample_size,
    normalized_estimates,
    relative_error,
)


class TestDefaults:
    def test_sample_sizes_powers_of_two(self):
        sizes = default_sample_sizes(14)
        assert sizes[0] == 1 and sizes[-1] == 16_384
        assert len(sizes) == 15

    def test_sample_sizes_rejects_negative(self):
        with pytest.raises(ValueError):
            default_sample_sizes(-1)

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert default_scale() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert default_scale() == 0.05
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert default_scale() == 0.25

    def test_default_scale_rejects_bad(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(ValueError):
            default_scale()


class TestEstimateOnce:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_each_algorithm_runs(self, algorithm, small_stream):
        from repro.core.frequency import self_join_size

        exact = self_join_size(small_stream)
        est = estimate_once(algorithm, small_stream, s=1024, rng=0)
        assert est == pytest.approx(exact, rel=0.5)

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            estimate_once("magic", [1, 2], 4)

    def test_rejects_bad_s(self):
        with pytest.raises(ValueError):
            estimate_once("tug-of-war", [1, 2], 0)


class TestAccuracySweep:
    def test_sweep_structure(self, small_stream):
        res = accuracy_sweep(
            small_stream, dataset="t", sample_sizes=[4, 64, 512], rng=0
        )
        assert res.n == small_stream.size
        assert len(res.points) == 9  # 3 algorithms x 3 sizes
        assert set(res.algorithms()) == set(ALGORITHMS)

    def test_series_extraction(self, small_stream):
        res = accuracy_sweep(small_stream, sample_sizes=[16, 256], rng=0)
        series = res.series("tug-of-war")
        assert [s for s, _ in series] == [16, 256]

    def test_rows_aligned(self, small_stream):
        res = accuracy_sweep(small_stream, sample_sizes=[8, 32], rng=0)
        rows = res.rows()
        assert [s for s, _ in rows] == [8, 32]
        for _, by_algo in rows:
            assert set(by_algo) == set(ALGORITHMS)

    def test_normalization(self, small_stream):
        res = accuracy_sweep(small_stream, sample_sizes=[2048], rng=1)
        for p in res.points:
            assert p.normalized == pytest.approx(p.estimate / res.exact_self_join)

    def test_large_budget_converges(self, small_stream):
        res = accuracy_sweep(small_stream, sample_sizes=[4096], rng=2, repeats=3)
        for p in res.points:
            assert p.normalized == pytest.approx(1.0, abs=0.4)

    def test_format_table(self, small_stream):
        res = accuracy_sweep(small_stream, sample_sizes=[16], rng=0)
        text = res.format_table()
        assert "tug-of-war" in text and "log2(s)" in text

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy_sweep(np.array([], dtype=np.int64))

    def test_rejects_unknown_algorithm(self, small_stream):
        with pytest.raises(KeyError):
            accuracy_sweep(small_stream, algorithms=["nope"])

    def test_rejects_bad_repeats(self, small_stream):
        with pytest.raises(ValueError):
            accuracy_sweep(small_stream, repeats=0)


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == float("inf")

    def test_normalized_estimates(self):
        out = normalized_estimates([50, 100, 200], 100)
        assert out.tolist() == [0.5, 1.0, 2.0]

    def test_normalized_rejects_zero_actual(self):
        with pytest.raises(ValueError):
            normalized_estimates([1.0], 0)

    def test_convergence_basic(self):
        series = [(1, 3.0), (2, 0.5), (4, 1.1), (8, 0.9), (16, 1.05)]
        assert convergence_sample_size(series) == 4

    def test_convergence_requires_staying_within(self):
        # Within at s=4 but out again at s=8: convergence is at 16.
        series = [(4, 1.0), (8, 2.0), (16, 1.0)]
        assert convergence_sample_size(series) == 16

    def test_convergence_none_when_never(self):
        assert convergence_sample_size([(1, 5.0), (2, 3.0)]) is None

    def test_convergence_unsorted_input(self):
        series = [(16, 1.0), (1, 9.0), (4, 1.0)]
        assert convergence_sample_size(series) == 4

    def test_convergence_empty_raises(self):
        with pytest.raises(ValueError):
            convergence_sample_size([])

    def test_convergence_bad_tolerance(self):
        with pytest.raises(ValueError):
            convergence_sample_size([(1, 1.0)], tolerance=0)

    def test_convergence_from_sweep(self, small_stream):
        res = accuracy_sweep(
            small_stream, sample_sizes=[64, 512, 2048], rng=3, repeats=3
        )
        table = convergence_from_sweep(res)
        assert set(table) == set(ALGORITHMS)
        for v in table.values():
            assert v is None or v in (64, 512, 2048)
