"""Fault-injection tests for the replicated cluster (ISSUE 7).

Four rings, every one anchored on the same invariant — the sketches
are linear and seed-deterministic, so no matter what dies, stalls, or
moves, a recovered fleet's answer must be **bit-identical** to a
monolithic :class:`WindowedSketchStore` fed the same stream:

1. **Worker death** — SIGKILL each replica of a 2x2 fleet in turn,
   mid-stream, for every mergeable kind: the next ingest detects the
   dead replica, respawns it through the supervisor, restores it from
   the healthy peer's snapshot, and the final answer is bit-identical.
2. **Stragglers** — a SIGSTOPped (or hook-stalled) replica must cost a
   hedged read one hedge delay, not a timeout.
3. **Mid-stream resharding** — ingest half at N shards, reshard to M
   under load, ingest the rest *including deletions that target
   old-epoch inserts*: epochs own time ranges, deletions carry the
   insert's timestamp, so the merged answer stays exact across the
   epoch boundary.
4. **At-most-once across replicas** — a partial-write retry against a
   replica set never double-applies on any replica: the ambiguous
   replica is quarantined and overwritten from a peer's absolute-state
   snapshot, and each replica's own store ends bit-identical to the
   monolith.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfigError,
    ClusterService,
    DropRequests,
    FaultInjector,
    LocalCluster,
    ShardMergeUnsupportedError,
    ShardRequestError,
    StallRequests,
    gather_merge,
    store_config,
)
from repro.cluster.client import _SendFailed
from repro.engine import dump_sketch, load_sketch
from repro.store import SketchSpec, WindowedSketchStore

MERGEABLE_KINDS = {
    "tugofwar": {"s1": 16, "s2": 3, "seed": 7},
    "frequency": {},
}


def template(kind: str = "tugofwar") -> WindowedSketchStore:
    return WindowedSketchStore(
        SketchSpec(kind, MERGEABLE_KINDS[kind]), bucket_width=10
    )


def two_phase_stream(rng, n: int = 1200):
    """(phase-1 inserts, phase-2 inserts + deletions of phase 1).

    Phase 1 lands in buckets [0, 100); phase 2 adds inserts in
    [100, 200) plus deletions reversing a third of phase 1 *at the
    original timestamps* — the store's deletion contract, and the
    shape that crosses any mid-stream cutover.
    """
    ts1 = rng.integers(0, 100, size=n).astype(np.int64)
    vals1 = rng.integers(0, 300, size=n).astype(np.int64)
    ts2 = rng.integers(100, 200, size=n).astype(np.int64)
    vals2 = rng.integers(0, 300, size=n).astype(np.int64)
    drop = rng.choice(n, size=n // 3, replace=False)
    ts_rest = np.concatenate([ts2, ts1[drop]])
    vals_rest = np.concatenate([vals2, vals1[drop]])
    counts_rest = np.concatenate(
        [np.ones(n, dtype=np.int64), np.full(n // 3, -1, dtype=np.int64)]
    )
    return (ts1, vals1), (ts_rest, vals_rest, counts_rest)


def replica_dump(client, t0: int, t1: int) -> dict:
    """One replica's own full-window sketch, straight over the wire."""
    response = client.request({"op": "sketch", "from": t0, "until": t1})
    return dump_sketch(load_sketch(response["sketch"]))


# ----------------------------------------------------------------------
# 1. Worker death: kill every replica in turn, for every mergeable kind
# ----------------------------------------------------------------------
class TestKillRecovery:
    @pytest.mark.parametrize("kind", sorted(MERGEABLE_KINDS))
    @pytest.mark.parametrize(
        "shard,replica", [(0, 0), (0, 1), (1, 0), (1, 1)]
    )
    def test_kill_each_replica_mid_stream(self, kind, shard, replica, rng):
        mono = template(kind)
        (ts1, vals1), (ts2, vals2, cnts2) = two_phase_stream(rng)
        with LocalCluster(
            store_config(template(kind)), 2, replication=2
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                service.ingest(ts1, vals1)
                mono.ingest(ts1, vals1)
                dead_pid = FaultInjector(cluster).kill(shard, replica)
                # The next ingest detects the dead replica, respawns it
                # through the supervisor, and restores it from the
                # surviving peer's snapshot — all inside one call.
                service.ingest(ts2, vals2, counts=cnts2)
                mono.ingest(ts2, vals2, counts=cnts2)
                assert service.failed_replicas == []
                assert cluster.worker(shard, replica).process.pid != dead_pid
                assert dump_sketch(service.query(0, 200)) == dump_sketch(
                    mono.query(0, 200)
                )
                # The respawned replica itself (not just the merged
                # answer) carries the exact shard state: killing its
                # peer now still leaves a bit-identical fleet.
                FaultInjector(cluster).kill(shard, 1 - replica)
                tail_ts = np.array([195], dtype=np.int64)
                tail_vals = np.array([7], dtype=np.int64)
                service.ingest(tail_ts, tail_vals)
                mono.ingest(tail_ts, tail_vals)
                assert service.failed_replicas == []
                assert dump_sketch(service.query(0, 200)) == dump_sketch(
                    mono.query(0, 200)
                )
            finally:
                service.close()

    def test_all_replicas_of_a_shard_dead_is_typed(self, rng):
        with LocalCluster(
            store_config(template()), 2, replication=1
        ) as cluster:
            # No supervisor: a dead singleton shard cannot be rebuilt.
            service = ClusterService(cluster.replica_clients())
            try:
                service.ingest([5], [1])
                cluster.worker(0, 0).process.kill()
                cluster.worker(1, 0).process.kill()
                cluster.worker(0, 0).process.wait()
                cluster.worker(1, 0).process.wait()
                from repro.cluster import (
                    ShardProtocolError,
                    ShardUnreachableError,
                )

                # A dead worker surfaces as unreachable on a fresh
                # dial, or as an ambiguous-delivery protocol error on
                # the stale connection it held — both typed.
                with pytest.raises(
                    (ShardProtocolError, ShardUnreachableError)
                ):
                    service.ingest([15], [2])
            finally:
                service.close()


# ----------------------------------------------------------------------
# 2. Stragglers: hedged reads answer around a stalled replica
# ----------------------------------------------------------------------
class TestStragglers:
    def test_sigstop_replica_hedged_query_completes(self, rng):
        mono = template()
        ts = rng.integers(0, 200, size=1500).astype(np.int64)
        vals = rng.integers(0, 300, size=1500).astype(np.int64)
        with LocalCluster(
            store_config(template()), 2, replication=2, client_timeout=30.0
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            injector = FaultInjector(cluster)
            try:
                service.ingest(ts, vals)
                mono.ingest(ts, vals)
                injector.stall(0, 0)  # the primary of shard 0
                start = time.monotonic()
                sketch = service.query(0, 200)
                elapsed = time.monotonic() - start
                # The stalled primary would hold the query until the
                # 30 s client timeout; the hedge answers from the
                # healthy peer after ~hedge_delay instead.
                assert elapsed < 2.5
                assert dump_sketch(sketch) == dump_sketch(mono.query(0, 200))
            finally:
                injector.resume_all()
                service.close()

    def test_hook_stalled_replica_hedged_query_completes(self, rng):
        # Signal-free twin of the SIGSTOP test: the straggler is a
        # deterministic client-hook sleep on the primary.
        mono = template()
        ts = rng.integers(0, 200, size=1000).astype(np.int64)
        vals = rng.integers(0, 300, size=1000).astype(np.int64)
        with LocalCluster(
            store_config(template()), 2, replication=2
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                service.ingest(ts, vals)
                mono.ingest(ts, vals)
                primary = cluster.replica_sets()[0][0].client
                with StallRequests(primary, seconds=5.0, ops={"sketch"}):
                    start = time.monotonic()
                    sketch = service.query(0, 200)
                    elapsed = time.monotonic() - start
                assert elapsed < 2.5
                assert dump_sketch(sketch) == dump_sketch(mono.query(0, 200))
            finally:
                service.close()

    def test_dropped_request_fails_over_and_repairs(self, rng):
        # An injected unreachable on the primary: the read fails over
        # to the peer, the primary is quarantined, and the next repair
        # pass restores it — no respawn needed, the process is fine.
        mono = template()
        ts = rng.integers(0, 200, size=1000).astype(np.int64)
        vals = rng.integers(0, 300, size=1000).astype(np.int64)
        with LocalCluster(
            store_config(template()), 2, replication=2
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                service.ingest(ts, vals)
                mono.ingest(ts, vals)
                primary = cluster.replica_sets()[0][0].client
                with DropRequests(primary, times=1, ops={"sketch"}):
                    sketch = service.query(0, 200)
                assert dump_sketch(sketch) == dump_sketch(mono.query(0, 200))
                assert service.failed_replicas == []
            finally:
                service.close()


# ----------------------------------------------------------------------
# 3. Mid-stream resharding: epochs own time ranges, deletions stay exact
# ----------------------------------------------------------------------
class TestReshard:
    @pytest.mark.parametrize("kind", sorted(MERGEABLE_KINDS))
    @pytest.mark.parametrize("to_shards", [1, 3, 4])
    def test_mid_stream_reshard_bit_identical(self, kind, to_shards, rng):
        mono = template(kind)
        (ts1, vals1), (ts2, vals2, cnts2) = two_phase_stream(rng)
        with LocalCluster(
            store_config(template(kind)), 2, replication=1
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                service.ingest(ts1, vals1)
                mono.ingest(ts1, vals1)
                epoch = service.reshard(to_shards, cutover=100)
                assert epoch == 1
                assert service.num_epochs == 2
                assert service.num_shards == to_shards
                # The rest of the stream: new-epoch inserts plus
                # deletions that target old-epoch inserts at their
                # original timestamps — they must route back to the
                # old epoch's shards.
                service.ingest(ts2, vals2, counts=cnts2)
                mono.ingest(ts2, vals2, counts=cnts2)
                for window in [(0, 200), (50, 150), (0, 100), (100, 200)]:
                    assert dump_sketch(
                        service.query(*window)
                    ) == dump_sketch(mono.query(*window))
            finally:
                service.close()

    def test_snapshot_restore_round_trip_across_epochs(self, rng):
        mono = template()
        (ts1, vals1), (ts2, vals2, cnts2) = two_phase_stream(rng, n=600)
        with LocalCluster(
            store_config(template()), 2, replication=1
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                service.ingest(ts1, vals1)
                mono.ingest(ts1, vals1)
                service.reshard(3, cutover=100)
                service.ingest(ts2, vals2, counts=cnts2)
                mono.ingest(ts2, vals2, counts=cnts2)
                snapshot = service.snapshot()
                assert len(snapshot["epochs"]) == 2
                assert snapshot["epochs"][1]["start"] == 100
                # Rebuilding every epoch's shard stores offline and
                # gather-merging them reproduces the exact answer.
                stores = [
                    WindowedSketchStore.from_dict(payload)
                    for entry in snapshot["epochs"]
                    for payload in entry["shards"]
                ]
                merged = gather_merge(
                    [store.query(0, 200) for store in stores]
                )
                assert dump_sketch(merged) == dump_sketch(mono.query(0, 200))
                # And the wire restore round-trips it back into a fleet.
                service.restore(snapshot)
                assert dump_sketch(service.query(0, 200)) == dump_sketch(
                    mono.query(0, 200)
                )
            finally:
                service.close()

    def test_reshard_without_supervisor_refused(self):
        with LocalCluster(store_config(template()), 1) as cluster:
            service = ClusterService(cluster.clients())
            try:
                with pytest.raises(ClusterConfigError, match="supervisor"):
                    service.reshard(2)
            finally:
                service.close()

    def test_reshard_cutovers_must_advance(self, rng):
        with LocalCluster(
            store_config(template()), 1, replication=1
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                service.ingest([5], [1])
                service.reshard(2, cutover=100)
                with pytest.raises(ClusterConfigError, match="ordered"):
                    service.reshard(2, cutover=50)
            finally:
                service.close()

    def test_new_epoch_deletion_without_insert_is_typed(self):
        # A deletion timestamped into the empty new epoch (instead of
        # at its insert's timestamp) must surface the store's typed
        # deletion-contract error, not silently corrupt a shard.
        with LocalCluster(
            store_config(template()), 1, replication=1
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                service.ingest([5], [9])
                service.reshard(2, cutover=100)
                with pytest.raises(
                    ShardRequestError, match="deletions must carry"
                ):
                    service.ingest(
                        [150], [9], counts=np.array([-1], dtype=np.int64)
                    )
            finally:
                service.close()

    def test_sampler_kind_cannot_form_a_replica_set(self):
        spec = SketchSpec("samplecount", {"s1": 8, "s2": 2, "seed": 1})
        store = WindowedSketchStore(
            spec, bucket_width=10, retention_policy="evict"
        )
        with LocalCluster(store_config(store), 1, replication=2) as cluster:
            with pytest.raises(ShardMergeUnsupportedError, match="samplecount"):
                ClusterService(
                    cluster.replica_clients(), supervisor=cluster
                )


# ----------------------------------------------------------------------
# 4. At-most-once across a replica set: retries never double-apply
# ----------------------------------------------------------------------
class TestAtMostOnceReplication:
    def test_partial_write_retry_never_double_applies(self, monkeypatch, rng):
        # White-box, real sockets: one replica's send dies mid-frame on
        # a stale connection — the provably-ambiguous case the client
        # refuses to retry.  The front end must quarantine exactly that
        # replica and overwrite it from its peer's absolute-state
        # snapshot; the acked peer is never re-sent the batch, so
        # nothing can double-count anywhere.
        monkeypatch.setattr("repro.cluster.client._sleep", lambda _t: None)
        mono = template()
        ts = rng.integers(0, 200, size=800).astype(np.int64)
        vals = rng.integers(0, 300, size=800).astype(np.int64)
        with LocalCluster(
            store_config(template()), 1, replication=2
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                victim = cluster.replica_sets()[0][1].client
                original = victim._send_counted

                def die_mid_frame(data):
                    victim._send_counted = original
                    raise _SendFailed(10)  # bytes escaped: ambiguous

                victim._send_counted = die_mid_frame
                service.ingest(ts, vals)
                mono.ingest(ts, vals)
                assert service.failed_replicas == []
                expected = dump_sketch(mono.query(0, 200))
                assert dump_sketch(service.query(0, 200)) == expected
                # Strongest form: each replica's own store — read
                # directly over the wire, no merging — is exact.
                for worker in cluster.replica_sets()[0]:
                    assert replica_dump(worker.client, 0, 200) == expected
            finally:
                service.close()

    def test_dropped_ingest_repairs_without_double_apply(self, rng):
        # The injected-unreachable twin: the drop fires before any
        # bytes move, the batch lands on the healthy peer only, and
        # repair clones the peer's post-batch state onto the dropped
        # replica.  Both replicas must end exact — a resend to the
        # acked peer would show up as a doubled sketch here.
        mono = template()
        ts = rng.integers(0, 200, size=800).astype(np.int64)
        vals = rng.integers(0, 300, size=800).astype(np.int64)
        with LocalCluster(
            store_config(template()), 1, replication=2
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                victim = cluster.replica_sets()[0][0].client
                with DropRequests(victim, times=1, ops={"ingest"}):
                    service.ingest(ts, vals)
                mono.ingest(ts, vals)
                assert service.failed_replicas == []
                expected = dump_sketch(mono.query(0, 200))
                assert dump_sketch(service.query(0, 200)) == expected
                for worker in cluster.replica_sets()[0]:
                    assert replica_dump(worker.client, 0, 200) == expected
            finally:
                service.close()

    def test_quorum_read_repairs_a_diverged_replica(self, rng):
        # Feed one replica a doctored extra batch behind the front
        # end's back; a quorum read must out-vote it and read-repair
        # it back to the majority state.
        mono = template()
        ts = rng.integers(0, 200, size=600).astype(np.int64)
        vals = rng.integers(0, 300, size=600).astype(np.int64)
        with LocalCluster(
            store_config(template()), 1, replication=3
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(),
                supervisor=cluster,
                read_mode="quorum",
            )
            try:
                service.ingest(ts, vals)
                mono.ingest(ts, vals)
                rogue = cluster.replica_sets()[0][2].client
                rogue.request({
                    "op": "ingest", "timestamps": [5], "values": [11],
                })
                expected = dump_sketch(mono.query(0, 200))
                assert dump_sketch(service.query(0, 200)) == expected
                assert service.failed_replicas == []
                # Read repair rewrote the rogue replica in place.
                assert replica_dump(rogue, 0, 200) == expected
            finally:
                service.close()


# ----------------------------------------------------------------------
# Replica-aware aggregation and validation (the old single-replica
# assumptions in info/stats/homogeneity)
# ----------------------------------------------------------------------
class TestReplicaAwareAggregation:
    def test_homogeneity_validated_per_replica(self):
        template_a = template()
        spec_b = SketchSpec("tugofwar", {"s1": 16, "s2": 3, "seed": 8})
        template_b = WindowedSketchStore(spec_b, bucket_width=10)
        with LocalCluster(store_config(template_a), 1) as a, \
                LocalCluster(store_config(template_b), 1) as b:
            # Shard 0's *second replica* disagrees — a flat-list
            # validation would never look at it.
            sets = [[a.clients()[0], b.clients()[0]]]
            with pytest.raises(
                ClusterConfigError, match=r"replica 1.*disagrees on spec"
            ):
                ClusterService(sets)

    def test_info_counts_logical_memory_once(self, rng):
        ts = rng.integers(0, 200, size=500).astype(np.int64)
        vals = rng.integers(0, 300, size=500).astype(np.int64)
        with LocalCluster(
            store_config(template()), 2, replication=2
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                service.ingest(ts, vals)
                info = service.info()
                assert info["shards"] == 2
                assert info["replication"] == [2, 2]
                assert info["epochs"] == 1
                # Logical footprint: one replica per set, not the sum
                # over all four workers.
                per_replica = sum(
                    group[0].client.request({"op": "info"})["memory_words"]
                    for group in [
                        cluster.replica_sets()[0],
                        cluster.replica_sets()[1],
                    ]
                )
                assert info["memory_words"] == per_replica
                assert service.replication == [2, 2]
            finally:
                service.close()

    def test_stats_reports_every_replica(self, rng):
        with LocalCluster(
            store_config(template()), 1, replication=2
        ) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            try:
                service.ingest([5, 15], [1, 2])
                service.estimate(0, 20)
                stats = service.stats()
                assert stats["shards"] == 1
                assert stats["replication"] == [2]
                assert stats["replicas"] == 2
                assert len(stats["per_replica"]) == 1
                assert len(stats["per_replica"][0]) == 2
                assert stats["misses"] >= 1
            finally:
                service.close()
