"""ISSUE 6: the binary wire protocol, the event-loop front end, and
the pipelined/at-most-once shard client.

Covers the frame and payload codecs (including malformed-frame fuzz),
the shared dispatch surface, protocol negotiation on both servers,
request pipelining, the oversized-frame guard, protocol bit-identity
(in-process vs line-JSON vs binary answers), and the shard client's
at-most-once retry classification.
"""

from __future__ import annotations

import io
import json
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.cluster.client import (
    ShardClient,
    ShardRequestError,
    _SendFailed,
    backoff_delay,
)
from repro.cluster.errors import ShardProtocolError, ShardUnreachableError
from repro.service import (
    EventLoopServer,
    SketchService,
    SketchServiceServer,
    handle_request,
)
from repro.service import wire
from repro.service.surface import OPS, handle_frame
from repro.store import SketchSpec, WindowedSketchStore


def make_service(kind: str = "tugofwar", bucket_width: int = 10) -> SketchService:
    params = {"s1": 32, "s2": 3, "seed": 7} if kind == "tugofwar" else {}
    store = WindowedSketchStore(SketchSpec(kind, params), bucket_width=bucket_width)
    return SketchService(store)


# ----------------------------------------------------------------------
# Compact codec
# ----------------------------------------------------------------------
class TestCompactCodec:
    @pytest.mark.parametrize("obj", [
        None, True, False, 0, 1, 127, -1, -32, -33, 128,
        2**40, -(2**40), 2**63 - 1, -(2**63),
        0.0, -1.5, 3.141592653589793, float("inf"),
        "", "hello", "é" * 300, "x" * 70_000,
        [], [1, 2, 3], [None, True, "mixed", 1.5],
        {}, {"a": 1}, {"nested": {"deep": [1, {"er": None}]}},
    ])
    def test_roundtrip(self, obj):
        assert wire.decode_compact(wire.encode_compact(obj)) == obj

    def test_int64_overflow_refused(self):
        with pytest.raises(wire.FrameFormatError, match="int64"):
            wire.encode_compact(2**63)

    def test_numpy_scalars_and_arrays(self):
        encoded = wire.encode_compact({
            "n": np.int64(7),
            "x": np.float64(2.5),
            "flag": np.bool_(True),
            "arr": np.array([1, 2, 3], dtype=np.int64),
        })
        assert wire.decode_compact(encoded) == {
            "n": 7, "x": 2.5, "flag": True, "arr": [1, 2, 3],
        }

    def test_keys_stringified_like_json(self):
        # Both protocols must decode a response to the same mapping, so
        # key coercion matches json.dumps exactly.
        payload = {1: "a", True: "b", None: "c", 2.5: "d"}
        via_json = json.loads(json.dumps(payload))
        via_wire = wire.decode_compact(wire.encode_compact(payload))
        assert via_wire == via_json

    def test_trailing_bytes_refused(self):
        with pytest.raises(wire.FrameFormatError, match="trailing"):
            wire.decode_compact(wire.encode_compact(1) + b"\x00")

    def test_truncated_payload_refused(self):
        encoded = wire.encode_compact({"key": "value"})
        with pytest.raises(wire.FrameFormatError, match="truncated"):
            wire.decode_compact(encoded[:-3])

    def test_depth_bomb_refused_both_directions(self):
        bomb: list = []
        for _ in range(100):
            bomb = [bomb]
        with pytest.raises(wire.FrameFormatError, match="nests deeper"):
            wire.encode_compact(bomb)
        # 100 nested array16 headers claiming one element each.
        hostile = b"\xdc\x01\x00" * 100 + b"\x01"
        with pytest.raises(wire.FrameFormatError):
            wire.decode_compact(hostile)

    def test_claimed_count_beyond_buffer_refused(self):
        # An array16 claiming 65535 entries backed by nothing must be
        # refused before any allocation loop.
        hostile = b"\xdc\xff\xff"
        with pytest.raises(wire.FrameFormatError, match="claims"):
            wire.decode_compact(hostile)

    def test_unknown_tag_refused(self):
        with pytest.raises(wire.FrameFormatError, match="unknown compact"):
            wire.decode_compact(b"\xc1")

    def test_non_string_key_refused_on_decode(self):
        hostile = b"\xde\x01\x00" + b"\x05" + b"\x05"  # {5: 5}
        with pytest.raises(wire.FrameFormatError, match="key"):
            wire.decode_compact(hostile)


# ----------------------------------------------------------------------
# Ingest payload codec
# ----------------------------------------------------------------------
class TestIngestCodec:
    def test_roundtrip_arrays(self):
        ts = np.array([1, 5, 9], dtype=np.int64)
        vals = np.array([10, -20, 2**62], dtype=np.int64)
        got_ts, got_vals, got_counts, got_key = wire.unpack_ingest(
            wire.pack_ingest(ts, vals)
        )
        np.testing.assert_array_equal(got_ts, ts)
        np.testing.assert_array_equal(got_vals, vals)
        assert got_counts is None
        assert got_key is None

    def test_roundtrip_with_counts(self):
        ts = np.array([1, 2], dtype=np.int64)
        vals = np.array([3, 4], dtype=np.int64)
        counts = np.array([5, -6], dtype=np.int64)
        _, _, got_counts, _ = wire.unpack_ingest(
            wire.pack_ingest(ts, vals, counts=counts)
        )
        np.testing.assert_array_equal(got_counts, counts)

    def test_scalar_timestamp_broadcasts(self):
        payload = wire.pack_ingest(42, np.array([1, 2, 3]))
        ts, vals, _, _ = wire.unpack_ingest(payload)
        np.testing.assert_array_equal(ts, [42, 42, 42])

    def test_constant_timestamp_array_sent_scalar(self):
        # A constant ts column is detected and costs 8 bytes, not 8n.
        const = wire.pack_ingest(np.full(100, 7), np.arange(100))
        varying = wire.pack_ingest(np.arange(100), np.arange(100))
        assert len(const) == len(varying) - 8 * 100 + 8 * 0
        ts, _, _, _ = wire.unpack_ingest(const)
        assert ts.tolist() == [7] * 100

    def test_zero_copy_views(self):
        payload = wire.pack_ingest(np.arange(4), np.arange(4))
        ts, vals, _, _ = wire.unpack_ingest(payload)
        assert not vals.flags.owndata  # a view over the frame buffer
        assert not vals.flags.writeable

    def test_shape_mismatch_refused(self):
        with pytest.raises(wire.WireError, match="match"):
            wire.pack_ingest(np.arange(3), np.arange(4))
        with pytest.raises(wire.WireError, match="match"):
            wire.pack_ingest(np.arange(3), np.arange(3), counts=np.arange(2))

    def test_non_integer_values_refused(self):
        with pytest.raises(wire.WireError, match="integer"):
            wire.pack_ingest(np.arange(2), np.array([1.5, 2.5]))

    def test_short_payload_refused(self):
        with pytest.raises(wire.FrameFormatError, match="shorter"):
            wire.unpack_ingest(b"\x00" * 8)

    def test_wrong_length_refused(self):
        payload = wire.pack_ingest(np.arange(3), np.arange(3))
        with pytest.raises(wire.FrameFormatError, match="length"):
            wire.unpack_ingest(payload + b"\x00" * 8)

    def test_keyed_roundtrip(self):
        ts = np.array([1, 5], dtype=np.int64)
        vals = np.array([10, -20], dtype=np.int64)
        got_ts, got_vals, got_counts, got_key = wire.unpack_ingest(
            wire.pack_ingest(ts, vals, key="tenant-α")
        )
        np.testing.assert_array_equal(got_ts, ts)
        np.testing.assert_array_equal(got_vals, vals)
        assert got_counts is None
        assert got_key == "tenant-α"

    def test_keyed_roundtrip_with_counts_and_scalar_ts(self):
        vals = np.array([3, 4], dtype=np.int64)
        counts = np.array([1, -1], dtype=np.int64)
        got_ts, _, got_counts, got_key = wire.unpack_ingest(
            wire.pack_ingest(7, vals, counts=counts, key="k")
        )
        assert got_ts.tolist() == [7, 7]
        np.testing.assert_array_equal(got_counts, counts)
        assert got_key == "k"

    def test_key_trailer_keeps_columns_zero_copy(self):
        payload = wire.pack_ingest(np.arange(4), np.arange(4), key="zz")
        ts, vals, _, key = wire.unpack_ingest(payload)
        assert key == "zz"
        assert not vals.flags.owndata
        assert not ts.flags.owndata

    def test_keyed_costs_key_bytes_plus_two(self):
        base = wire.pack_ingest(np.arange(3), np.arange(3))
        keyed = wire.pack_ingest(np.arange(3), np.arange(3), key="abc")
        assert len(keyed) == len(base) + 2 + 3

    def test_bad_keys_refused_at_pack(self):
        with pytest.raises(wire.WireError, match="non-empty string"):
            wire.pack_ingest(np.arange(2), np.arange(2), key="")
        with pytest.raises(wire.WireError, match="non-empty string"):
            wire.pack_ingest(np.arange(2), np.arange(2), key=7)
        with pytest.raises(wire.WireError, match="65535"):
            wire.pack_ingest(np.arange(2), np.arange(2), key="x" * 70000)

    def test_truncated_key_refused(self):
        payload = wire.pack_ingest(np.arange(2), np.arange(2), key="abcdef")
        with pytest.raises(wire.FrameFormatError, match="key"):
            wire.unpack_ingest(payload[:-3])

    def test_undeclared_key_length_refused(self):
        # Flag set but payload ends right after the columns.
        payload = bytearray(wire.pack_ingest(np.arange(2), np.arange(2)))
        payload[0] |= 0x04
        with pytest.raises(wire.FrameFormatError, match="key"):
            wire.unpack_ingest(bytes(payload))


# ----------------------------------------------------------------------
# Frame parsing fuzz
# ----------------------------------------------------------------------
class TestFrameFuzz:
    def test_truncated_header(self):
        with pytest.raises(wire.FrameFormatError, match="truncated"):
            wire.unpack_header(wire.MAGIC + b"\x01")

    def test_bad_magic(self):
        header = struct.pack("<2sBBHI", b"XX", 1, 1, 0, 0)
        with pytest.raises(wire.FrameFormatError, match="magic"):
            wire.unpack_header(header)

    def test_length_overflow(self):
        header = struct.pack("<2sBBHI", wire.MAGIC, 1, 1, 0, 2**31)
        with pytest.raises(wire.FrameTooLargeError, match="exceeds"):
            wire.unpack_header(header)

    def test_version_skew_parses(self):
        # The header layout is version-invariant: a skewed version must
        # parse so dispatch can answer with a readable error frame.
        header = struct.pack("<2sBBHI", wire.MAGIC, 99, 1, 0, 0)
        version, opcode, flags, length = wire.unpack_header(header)
        assert version == 99 and opcode == 1 and length == 0

    def test_decoder_incremental_byte_by_byte(self):
        frames = (
            wire.pack_frame(wire.OP_PING)
            + wire.pack_frame(wire.OP_INFO, wire.encode_compact({"a": 1}))
        )
        decoder = wire.FrameDecoder()
        seen = []
        for i in range(len(frames)):
            decoder.feed(frames[i:i + 1])
            seen.extend(decoder.frames())
        assert [f[1] for f in seen] == [wire.OP_PING, wire.OP_INFO]
        assert decoder.pending_bytes == 0

    def test_decoder_raises_after_parsing_good_prefix(self):
        decoder = wire.FrameDecoder()
        decoder.feed(wire.pack_frame(wire.OP_PING) + b"garbage-not-magic")
        drained = list(
            frame for frame in _drain_until_error(decoder)
        )
        assert drained[0][1] == wire.OP_PING

    def test_blocking_read_frame_truncated_payload(self):
        import io

        frame = wire.pack_frame(wire.OP_PING, b"\x01\x02\x03\x04")
        with pytest.raises(wire.FrameFormatError, match="truncated"):
            wire.read_frame(io.BytesIO(frame[:-2]))

    def test_blocking_read_frame_clean_eof(self):
        import io

        assert wire.read_frame(io.BytesIO(b"")) is None


def _drain_until_error(decoder):
    try:
        yield from decoder.frames()
    except wire.FrameFormatError:
        return


# ----------------------------------------------------------------------
# Dispatch surface
# ----------------------------------------------------------------------
class TestHandleFrame:
    def test_ping_roundtrip(self):
        service = make_service()
        response, stopping = handle_frame(
            service, wire.WIRE_VERSION, wire.OP_PING, 0, b""
        )
        version, opcode, flags, payload = _parse_one(response)
        assert opcode == wire.OP_PING and flags == wire.FLAG_RESPONSE
        assert wire.decode_compact(payload)["pong"] is True
        assert not stopping

    def test_version_skew_answered_not_dropped(self):
        response, stopping = handle_frame(
            make_service(), 99, wire.OP_PING, 0, b""
        )
        _, _, flags, payload = _parse_one(response)
        assert flags & wire.FLAG_ERROR
        assert "version" in wire.decode_compact(payload)["error"]
        assert not stopping

    def test_response_flag_as_request_refused(self):
        response, _ = handle_frame(
            make_service(), wire.WIRE_VERSION, wire.OP_PING,
            wire.FLAG_RESPONSE, b"",
        )
        _, _, flags, payload = _parse_one(response)
        assert flags & wire.FLAG_ERROR

    def test_unknown_opcode_lists_supported(self):
        response, _ = handle_frame(
            make_service(), wire.WIRE_VERSION, 200, 0, b""
        )
        _, _, flags, payload = _parse_one(response)
        assert flags & wire.FLAG_ERROR
        assert "unknown opcode" in wire.decode_compact(payload)["error"]

    def test_hello_negotiates_max_shared(self):
        response, _ = handle_frame(
            make_service(), wire.WIRE_VERSION, wire.OP_HELLO, 0,
            wire.encode_compact({"versions": [0, 1, 7]}),
        )
        _, _, flags, payload = _parse_one(response)
        assert not flags & wire.FLAG_ERROR
        assert wire.decode_compact(payload)["version"] == 1

    def test_hello_no_shared_version_is_error(self):
        response, _ = handle_frame(
            make_service(), wire.WIRE_VERSION, wire.OP_HELLO, 0,
            wire.encode_compact({"versions": [99]}),
        )
        _, _, flags, payload = _parse_one(response)
        assert flags & wire.FLAG_ERROR
        assert "no shared" in wire.decode_compact(payload)["error"]

    def test_ingest_frame_lands_in_store(self):
        service = make_service(kind="frequency")
        payload = wire.pack_ingest(5, np.array([1, 1, 2]))
        response, _ = handle_frame(
            service, wire.WIRE_VERSION, wire.OP_INGEST, 0, payload
        )
        _, _, flags, body = _parse_one(response)
        assert wire.decode_compact(body) == {
            "ok": True, "op": "ingest", "ingested": 3,
        }
        assert service.estimate_window(0, 10).estimate == 5.0  # 2^2 + 1

    def test_shutdown_reports_stopping(self):
        response, stopping = handle_frame(
            make_service(), wire.WIRE_VERSION, wire.OP_SHUTDOWN, 0, b""
        )
        assert stopping
        _, _, flags, payload = _parse_one(response)
        assert wire.decode_compact(payload)["stopping"] is True

    def test_every_op_exists_exactly_once(self):
        # The dispatch table is the single source: JSON names and
        # binary opcodes cover the same op set, no duplicates.
        assert sorted(OPS) == sorted(
            name for name in wire.OPCODE_NAMES.values() if name != "hello"
        )
        assert len({spec.opcode for spec in OPS.values()}) == len(OPS)


def _parse_one(frame_bytes: bytes):
    decoder = wire.FrameDecoder()
    decoder.feed(frame_bytes)
    frames = list(decoder.frames())
    assert len(frames) == 1 and decoder.pending_bytes == 0
    return frames[0]


# ----------------------------------------------------------------------
# Servers end to end
# ----------------------------------------------------------------------
def _serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def _stop(server, thread):
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    assert not thread.is_alive()


def _json_exchange(sock_file, request: dict) -> dict:
    sock_file.write((json.dumps(request) + "\n").encode())
    sock_file.flush()
    return json.loads(sock_file.readline())


@pytest.mark.parametrize("server_cls", [SketchServiceServer, EventLoopServer])
class TestServersBothProtocols:
    """Contracts that must hold for the threaded and event-loop servers."""

    def test_json_and_binary_interop_one_port(self, server_cls):
        service = make_service(kind="frequency")
        server = server_cls(service, ("127.0.0.1", 0), read_timeout=10.0)
        thread = _serve(server)
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as conn:
                f = conn.makefile("rwb")
                assert _json_exchange(f, {"op": "ping"})["pong"] is True
                assert _json_exchange(f, {
                    "op": "ingest", "timestamps": [1, 2], "values": [5, 5],
                })["ingested"] == 2
            with socket.create_connection((host, port), timeout=10) as conn:
                rf = conn.makefile("rb")
                conn.sendall(wire.pack_frame(
                    wire.OP_INGEST, wire.pack_ingest(3, np.array([5]))
                ))
                _, opcode, flags, payload = wire.read_frame(rf)
                assert wire.decode_compact(payload)["ingested"] == 1
                conn.sendall(wire.pack_frame(
                    wire.OP_ESTIMATE,
                    wire.encode_compact({"from": 0, "until": 10}),
                ))
                _, _, _, payload = wire.read_frame(rf)
                # 3 copies of value 5 → second moment 9, via both wires.
                assert wire.decode_compact(payload)["estimate"] == 9.0
        finally:
            _stop(server, thread)

    def test_json_only_port_refuses_binary(self, server_cls):
        server = server_cls(
            make_service(), ("127.0.0.1", 0),
            read_timeout=10.0, protocol="json",
        )
        thread = _serve(server)
        try:
            with socket.create_connection(
                server.server_address[:2], timeout=10
            ) as conn:
                conn.sendall(wire.pack_frame(wire.OP_PING))
                rf = conn.makefile("rb")
                _, _, flags, payload = wire.read_frame(rf)
                assert flags & wire.FLAG_ERROR
                assert "line-JSON" in wire.decode_compact(payload)["error"]
                assert rf.read(1) == b""  # connection closed after
        finally:
            _stop(server, thread)

    def test_binary_only_port_refuses_json(self, server_cls):
        server = server_cls(
            make_service(), ("127.0.0.1", 0),
            read_timeout=10.0, protocol="binary",
        )
        thread = _serve(server)
        try:
            with socket.create_connection(
                server.server_address[:2], timeout=10
            ) as conn:
                f = conn.makefile("rwb")
                response = _json_exchange(f, {"op": "ping"})
                assert response["ok"] is False
                assert "binary protocol only" in response["error"]
        finally:
            _stop(server, thread)

    def test_bad_magic_answered_then_closed(self, server_cls):
        server = server_cls(
            make_service(), ("127.0.0.1", 0), read_timeout=10.0
        )
        thread = _serve(server)
        try:
            with socket.create_connection(
                server.server_address[:2], timeout=10
            ) as conn:
                conn.sendall(b"\xabX" + b"\x00" * 8)
                rf = conn.makefile("rb")
                _, _, flags, payload = wire.read_frame(rf)
                assert flags & wire.FLAG_ERROR
                assert "magic" in wire.decode_compact(payload)["error"]
                assert rf.read(1) == b""
        finally:
            _stop(server, thread)

    def test_rejects_bad_protocol_and_frame_limit(self, server_cls):
        with pytest.raises(ValueError, match="protocol"):
            server_cls(make_service(), ("127.0.0.1", 0), protocol="carrier-pigeon")
        with pytest.raises(ValueError, match="max_frame_bytes"):
            server_cls(make_service(), ("127.0.0.1", 0), max_frame_bytes=4)


class TestEventLoopServer:
    def test_pipelined_requests_answered_in_order(self):
        service = make_service(kind="frequency", bucket_width=1)
        service.ingest(np.arange(64), np.arange(64))
        server = EventLoopServer(service, ("127.0.0.1", 0), read_timeout=10.0)
        thread = _serve(server)
        try:
            with socket.create_connection(
                server.server_address[:2], timeout=10
            ) as conn:
                n = 24
                blob = b"".join(
                    wire.pack_frame(
                        wire.OP_ESTIMATE,
                        wire.encode_compact({"from": i, "until": i + 1}),
                    )
                    for i in range(n)
                )
                conn.sendall(blob)  # all queued before any response read
                rf = conn.makefile("rb")
                windows = []
                for _ in range(n):
                    _, _, flags, payload = wire.read_frame(rf)
                    assert not flags & wire.FLAG_ERROR
                    windows.append(wire.decode_compact(payload)["window"])
                assert windows == [[i, i + 1] for i in range(n)]
        finally:
            _stop(server, thread)

    def test_max_requests_self_shutdown(self):
        server = EventLoopServer(
            make_service(), ("127.0.0.1", 0),
            max_requests=2, read_timeout=10.0,
        )
        thread = _serve(server)
        with socket.create_connection(
            server.server_address[:2], timeout=10
        ) as conn:
            conn.sendall(
                wire.pack_frame(wire.OP_PING) + wire.pack_frame(wire.OP_PING)
            )
            rf = conn.makefile("rb")
            for _ in range(2):
                _, opcode, flags, _ = wire.read_frame(rf)
                assert opcode == wire.OP_PING
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()

    def test_oversized_frame_refused_connection_survives(self):
        server = EventLoopServer(
            make_service(), ("127.0.0.1", 0),
            read_timeout=10.0, max_frame_bytes=1024,
        )
        thread = _serve(server)
        try:
            with socket.create_connection(
                server.server_address[:2], timeout=10
            ) as conn:
                conn.sendall(wire.pack_frame(wire.OP_INFO, b"\x00" * 4096))
                rf = conn.makefile("rb")
                _, _, flags, payload = wire.read_frame(rf)
                assert flags & wire.FLAG_ERROR
                assert "1024" in wire.decode_compact(payload)["error"]
                # Same connection keeps serving.
                conn.sendall(wire.pack_frame(wire.OP_PING))
                _, opcode, flags, _ = wire.read_frame(rf)
                assert opcode == wire.OP_PING and not flags & wire.FLAG_ERROR
        finally:
            _stop(server, thread)

    def test_malformed_json_answered_connection_survives(self):
        server = EventLoopServer(
            make_service(), ("127.0.0.1", 0), read_timeout=10.0
        )
        thread = _serve(server)
        try:
            with socket.create_connection(
                server.server_address[:2], timeout=10
            ) as conn:
                f = conn.makefile("rwb")
                f.write(b"{not json}\n")
                f.flush()
                bad = json.loads(f.readline())
                assert bad["ok"] is False and "invalid JSON" in bad["error"]
                assert _json_exchange(f, {"op": "ping"})["pong"] is True
        finally:
            _stop(server, thread)


# ----------------------------------------------------------------------
# Protocol bit-identity
# ----------------------------------------------------------------------
class TestProtocolBitIdentity:
    """The wire must be invisible: in-process, line-JSON, and binary
    paths produce identical estimates for every mergeable kind."""

    @pytest.mark.parametrize("kind", ["tugofwar", "frequency"])
    def test_three_paths_identical(self, kind):
        rng = np.random.default_rng(1999)
        n = 5_000
        ts = np.sort(rng.integers(0, 200, size=n))
        # Skewed but clamped inside the tug-of-war hash field.
        vals = (rng.zipf(1.3, size=n) % 1_000_000).astype(np.int64) + 1

        inproc = make_service(kind)
        inproc.ingest(ts, vals)

        wire_estimates = {}
        for protocol in ("json", "binary"):
            service = make_service(kind)
            server = SketchServiceServer(
                service, ("127.0.0.1", 0), read_timeout=30.0
            )
            thread = _serve(server)
            try:
                host, port = server.server_address[:2]
                with ShardClient(host, port, protocol=protocol) as client:
                    total = client.ingest_batches(
                        (ts[i:i + 512], vals[i:i + 512])
                        for i in range(0, n, 512)
                    )
                    assert total == n
                    wire_estimates[protocol] = [
                        client.request({
                            "op": "estimate", "from": t0, "until": t1,
                            "align": "outer",
                        })["estimate"]
                        for t0, t1 in [(0, 200), (0, 100), (50, 150)]
                    ]
            finally:
                _stop(server, thread)

        expected = [
            inproc.estimate_window(t0, t1, align="outer").estimate
            for t0, t1 in [(0, 200), (0, 100), (50, 150)]
        ]
        assert wire_estimates["json"] == expected
        assert wire_estimates["binary"] == expected


# ----------------------------------------------------------------------
# Shard client: retries, backoff, pipelined ingest
# ----------------------------------------------------------------------
class _OneShotServer:
    """Accepts connections and serves N JSON requests per connection,
    then closes it — a deterministic stale-socket factory."""

    def __init__(self, requests_per_connection: int = 1):
        self.service = make_service(kind="frequency")
        self.per_conn = requests_per_connection
        self.connections = 0
        self._stopped = False
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(0.1)  # closing a socket does not wake accept()
        self.address = self._sock.getsockname()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while not self._stopped:
            try:
                conn, _ = self._sock.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            self.connections += 1
            with conn:
                f = conn.makefile("rwb")
                try:
                    for _ in range(self.per_conn):
                        line = f.readline()
                        if not line:
                            break
                        response = handle_request(self.service, line)
                        f.write((json.dumps(response) + "\n").encode())
                        f.flush()
                finally:
                    # Close the dup'd file object too, or the fd (and
                    # therefore the FIN the client is waiting for)
                    # outlives the `with conn` block.
                    f.close()

    def close(self):
        self._stopped = True
        self._thread.join(timeout=5)
        self._sock.close()


class TestShardClientRetries:
    def test_backoff_delay_jittered_and_capped(self):
        delays = [backoff_delay(a, base=0.1, cap=0.8) for a in range(6)]
        for attempt, delay in enumerate(delays):
            ceiling = min(0.8, 0.1 * 2**attempt)
            assert ceiling / 2 <= delay <= ceiling
        assert max(delays) <= 0.8

    def test_stale_connection_idempotent_op_resent(self, monkeypatch):
        slept: list[float] = []
        monkeypatch.setattr("repro.cluster.client._sleep", slept.append)
        server = _OneShotServer(requests_per_connection=1)
        try:
            with ShardClient(*server.address) as client:
                assert client.request({"op": "ping"})["pong"] is True
                # The socket is now stale (server closed it after one
                # request); an idempotent op reconnects with backoff.
                assert client.request({"op": "ping"})["pong"] is True
            assert server.connections == 2
            assert len(slept) == 1 and slept[0] > 0
        finally:
            server.close()

    def test_stale_connection_ambiguous_ingest_not_resent(self):
        server = _OneShotServer(requests_per_connection=1)
        try:
            with ShardClient(*server.address) as client:
                client.request({"op": "ping"})
                with pytest.raises(ShardProtocolError, match="ambiguous"):
                    client.request({
                        "op": "ingest",
                        "timestamps": [1], "values": [2],
                    })
            # Crucially, the batch was NOT silently replayed.
            assert server.connections == 1
        finally:
            server.close()

    def test_stale_connection_unsent_ingest_safely_resent(self, monkeypatch):
        # Zero bytes written ⇒ the worker cannot have seen the batch,
        # so even a non-idempotent op may be resent.
        monkeypatch.setattr("repro.cluster.client._sleep", lambda _t: None)
        server = _OneShotServer(requests_per_connection=2)
        try:
            with ShardClient(*server.address) as client:
                client.request({"op": "ping"})
                original = client._send_counted

                def fail_before_sending(data):
                    client._send_counted = original
                    raise _SendFailed(0)

                client._send_counted = fail_before_sending
                response = client.request({
                    "op": "ingest", "timestamps": [1], "values": [2],
                })
                assert response["ingested"] == 1
            assert server.connections == 2
        finally:
            server.close()

    def test_fresh_connection_failure_is_final(self):
        client = ShardClient("127.0.0.1", 1)  # nothing listens here
        with pytest.raises(ShardUnreachableError, match="unreachable"):
            client.request({"op": "ping"})

    def test_request_refusal_still_typed(self):
        server = _OneShotServer(requests_per_connection=10)
        try:
            with ShardClient(*server.address) as client:
                with pytest.raises(ShardRequestError, match="from"):
                    client.request({"op": "estimate"})
        finally:
            server.close()

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError, match="protocol"):
            ShardClient("127.0.0.1", 1, protocol="morse")

    def test_mispaired_response_opcode_detected(self):
        # A binary response must echo the request's opcode; a stale
        # ingest ack surfacing as the answer to a ping is a protocol
        # error, not a silently mis-decoded response.
        client = ShardClient("127.0.0.1", 1, protocol="binary")
        client._rfile = io.BytesIO(wire.pack_frame(
            wire.OP_INGEST,
            wire.encode_compact({"ok": True, "op": "ingest", "ingested": 7}),
            flags=wire.FLAG_RESPONSE,
        ))
        with pytest.raises(ShardProtocolError, match="mispaired"):
            client._read_response(wire.OP_PING)

    def test_hello_error_frame_passes_opcode_check(self):
        # OP_HELLO error frames are the server's stream-level failure
        # channel (no request opcode to echo); they must surface as
        # the worker's refusal message, not as a mispairing.
        client = ShardClient("127.0.0.1", 1, protocol="binary")
        client._rfile = io.BytesIO(wire.pack_frame(
            wire.OP_HELLO,
            wire.encode_compact({"ok": False, "error": "bad frame magic"}),
            flags=wire.FLAG_RESPONSE | wire.FLAG_ERROR,
        ))
        with pytest.raises(ShardRequestError, match="bad frame magic"):
            client._read_response(wire.OP_PING)


class TestPipelinedIngest:
    def test_binary_pipelined_batches_land(self):
        service = make_service(kind="frequency", bucket_width=1)
        server = SketchServiceServer(
            service, ("127.0.0.1", 0), read_timeout=30.0
        )
        thread = _serve(server)
        try:
            host, port = server.server_address[:2]
            with ShardClient(host, port, protocol="binary") as client:
                total = client.ingest_batches(
                    ((np.full(100, i), np.full(100, 7)) for i in range(20)),
                    window=6,
                )
            assert total == 2000
            assert service.estimate_window(0, 20).estimate == 2000.0**2
        finally:
            _stop(server, thread)

    def test_pipelined_failure_is_ambiguous(self):
        # A server that dies mid-pipeline must surface ambiguity, not
        # resend: at-most-once extends to the batched path.
        server = _OneShotServer(requests_per_connection=1)
        host, port = server.address
        try:
            with ShardClient(host, port, protocol="json") as seed:
                seed.request({"op": "ping"})
            server.close()
            with ShardClient(host, port, protocol="binary") as client:
                with pytest.raises(
                    (ShardProtocolError, ShardUnreachableError)
                ):
                    client.ingest_batches(
                        ((np.full(10, i), np.full(10, 1)) for i in range(50)),
                        window=4,
                    )
        finally:
            server.close()

    def test_window_must_be_positive(self):
        client = ShardClient("127.0.0.1", 1, protocol="binary")
        with pytest.raises(ValueError, match="window"):
            client.ingest_batches([], window=0)

    def test_pipelined_refusal_tears_down_connection(self):
        # A worker refusal of one pipelined batch leaves later acks
        # unread on the socket; the client must drop the connection so
        # the next request cannot pair with a stale ingest ack.
        service = make_service(kind="frequency", bucket_width=1)
        server = SketchServiceServer(
            service, ("127.0.0.1", 0), read_timeout=30.0
        )
        thread = _serve(server)
        try:
            host, port = server.server_address[:2]
            with ShardClient(host, port, protocol="binary") as client:
                poisoned = [
                    (np.full(4, 0), np.arange(4)),
                    # Deletes values never inserted: refused (KeyError).
                    (np.full(4, 0), np.arange(100, 104), np.full(4, -1)),
                    (np.full(4, 1), np.arange(4)),
                    (np.full(4, 2), np.arange(4)),
                ]
                with pytest.raises(ShardRequestError, match="delete"):
                    client.ingest_batches(poisoned, window=8)
                assert client._sock is None
                # A fresh connection answers cleanly — before the
                # teardown fix this read a stale ingest ack instead.
                assert client.request({"op": "ping"})["pong"] is True
        finally:
            _stop(server, thread)

    def test_stale_unsent_pipeline_reconnects(self, monkeypatch):
        # Zero bytes of the first frame reached a stale socket: the
        # worker provably saw nothing, so the pipeline re-dials with
        # backoff instead of refusing with an "ambiguous" error.
        slept: list[float] = []
        monkeypatch.setattr("repro.cluster.client._sleep", slept.append)
        service = make_service(kind="frequency", bucket_width=1)
        server = SketchServiceServer(
            service, ("127.0.0.1", 0), read_timeout=30.0
        )
        thread = _serve(server)
        try:
            host, port = server.server_address[:2]
            with ShardClient(host, port, protocol="binary") as client:
                assert client.request({"op": "ping"})["pong"] is True
                original = client._send_counted

                def fail_before_sending(data):
                    client._send_counted = original
                    raise _SendFailed(0)

                client._send_counted = fail_before_sending
                total = client.ingest_batches(
                    ((np.full(10, i), np.full(10, 3)) for i in range(5)),
                    window=2,
                )
            assert total == 50
            assert len(slept) == 1 and slept[0] > 0
            assert service.estimate_window(0, 5).estimate == 50.0**2
        finally:
            _stop(server, thread)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestServeCliKnobs:
    def test_bad_max_frame_bytes_clear_error(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "s.json")
        assert main(
            ["store", "init", "--kind", "frequency", "--bucket-width", "10",
             "--out", path]
        ) == 0
        assert main(["serve", path, "--max-frame-bytes", "4"]) == 2
        assert "max_frame_bytes" in capsys.readouterr().err

    def test_binary_protocol_served_through_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "s.json")
        assert main(
            ["store", "init", "--kind", "frequency", "--bucket-width", "10",
             "--out", path]
        ) == 0
        rc: list[int] = []
        thread = threading.Thread(
            target=lambda: rc.append(main(
                ["serve", path, "--port", "0", "--protocol", "binary",
                 "--max-requests", "2"]
            ))
        )
        thread.start()
        port = None
        for _ in range(200):
            out = capsys.readouterr().out
            if " on 127.0.0.1:" in out:
                port = int(out.split(" on 127.0.0.1:")[1].split()[0])
                break
            time.sleep(0.05)
        assert port is not None, "server never announced its port"
        with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
            conn.sendall(
                wire.pack_frame(
                    wire.OP_INGEST, wire.pack_ingest(1, np.array([5, 5]))
                )
                + wire.pack_frame(
                    wire.OP_ESTIMATE,
                    wire.encode_compact({"from": 0, "until": 10}),
                )
            )
            rf = conn.makefile("rb")
            _, _, _, payload = wire.read_frame(rf)
            assert wire.decode_compact(payload)["ingested"] == 2
            _, _, _, payload = wire.read_frame(rf)
            assert wire.decode_compact(payload)["estimate"] == 4.0
        thread.join(timeout=10)
        assert not thread.is_alive() and rc == [0]
