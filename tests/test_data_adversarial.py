"""Unit tests for the adversarial / lower-bound data sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import distinct_values, join_size, self_join_size
from repro.data.adversarial import (
    lemma23_pair,
    path_dataset,
    theorem43_instance,
    theorem43_parameters,
    theorem43_set_system,
)


class TestPathDataset:
    def test_table1_characteristics(self):
        out = path_dataset(rng=0)
        assert out.size == 40_800
        assert distinct_values(out) == 40_001
        assert self_join_size(out) == 680_000  # 40000 + 800^2 = 6.8e5

    def test_heavy_value_count(self):
        out = path_dataset(singletons=100, heavy_count=30, rng=1)
        values, counts = np.unique(out, return_counts=True)
        assert counts.max() == 30
        assert (counts == 1).sum() == 100

    def test_shuffled(self):
        out = path_dataset(singletons=1000, heavy_count=100, rng=2)
        # Heavy value (0) should not be contiguous after shuffling.
        positions = np.flatnonzero(out == 0)
        assert positions.max() - positions.min() > 200

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            path_dataset(singletons=-1)


class TestLemma23Pair:
    def test_self_join_sizes(self):
        r1, r2 = lemma23_pair(1000, rng=0)
        assert self_join_size(r1) == 1000
        assert self_join_size(r2) == 2000

    def test_shapes(self):
        r1, r2 = lemma23_pair(500, rng=1)
        assert r1.size == r2.size == 500
        assert distinct_values(r1) == 500
        assert distinct_values(r2) == 250

    def test_rejects_odd_or_tiny(self):
        with pytest.raises(ValueError):
            lemma23_pair(7)
        with pytest.raises(ValueError):
            lemma23_pair(0)


class TestTheorem43:
    def test_parameters_integrality(self):
        n, b = theorem43_parameters(8, 16)
        assert n == 16 * 8 * 9 == 1152
        assert b == (16 * 8) ** 2 == 16_384
        root = int(np.sqrt(b))
        m = n - root
        assert b % m == 0
        assert (m * m) % b == 0

    def test_parameters_validate(self):
        with pytest.raises(ValueError):
            theorem43_parameters(0, 1)
        with pytest.raises(ValueError, match="outside"):
            theorem43_parameters(8, 1)  # B = 64 < n = 72

    def test_set_system_properties(self):
        rng = np.random.default_rng(0)
        family = theorem43_set_system(100, 10, 8, rng, max_intersection=5)
        assert len(family) == 8
        for i, a in enumerate(family):
            assert a.size == 10
            assert np.unique(a).size == 10
            assert a.min() >= 1 and a.max() <= 100
            for b in family[i + 1 :]:
                assert len(set(a.tolist()) & set(b.tolist())) <= 5

    def test_set_system_impossible_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError, match="could not build"):
            # 5 pairwise-(almost-)disjoint 6-subsets of a 10-universe
            # cannot exist (needs 5*6 - overlaps > 10 by pigeonhole).
            theorem43_set_system(10, 6, 5, rng, max_intersection=0, max_attempts=200)

    def test_set_size_exceeding_universe_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="exceeds"):
            theorem43_set_system(5, 6, 1, rng)

    def test_instance_join_size_exact(self):
        n, b = theorem43_parameters(6, 12)
        for seed in range(10):
            inst = theorem43_instance(n, b, rng=seed)
            assert inst["F"].size == n
            assert inst["G"].size == n
            assert join_size(inst["F"], inst["G"]) == inst["join_size"]
            assert inst["join_size"] in (b, 2 * b)

    def test_instance_meets_sanity_bound(self):
        n, b = theorem43_parameters(6, 12)
        inst = theorem43_instance(n, b, rng=3)
        assert inst["join_size"] >= b

    def test_both_join_sizes_occur(self):
        n, b = theorem43_parameters(6, 12)
        seen = {theorem43_instance(n, b, rng=seed)["join_size"] for seed in range(40)}
        assert seen == {b, 2 * b}

    def test_instance_validates_inputs(self):
        with pytest.raises(ValueError, match="perfect square"):
            theorem43_instance(100, 101)
        with pytest.raises(ValueError, match="sanity bound"):
            theorem43_instance(100, 10)
        n, b = theorem43_parameters(6, 12)
        with pytest.raises(ValueError, match="m | B|integral"):
            theorem43_instance(n + 1, b)
