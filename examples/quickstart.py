#!/usr/bin/env python
"""Quickstart: track a self-join size in limited storage.

Builds a skewed stream, tracks its self-join size (second frequency
moment) with all three Section 2 algorithms, updates through deletions,
compares against the exact answer, and finishes with the engine layer:
sharded parallel builds and sketch serialization — the 60-second tour
of the library's public API.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FrequencyVector,
    NaiveSamplingEstimator,
    SampleCountSketch,
    TugOfWarSketch,
    dumps_sketch,
    loads_sketch,
    self_join_size,
    sharded_build,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # A Zipf-ish stream: 100k values over ~8k distinct.
    stream = (rng.zipf(1.3, size=100_000) % 8_192).astype(np.int64)
    exact = self_join_size(stream)
    print(f"stream: n={stream.size:,}, exact self-join size = {exact:,}")

    # --- tug-of-war: 1280 memory words (s1=256 accuracy, s2=5 confidence)
    tw = TugOfWarSketch(s1=256, s2=5, seed=42)
    tw.update_from_stream(stream)  # vectorised bulk load
    print(
        f"tug-of-war    ({tw.memory_words:>5} words): {tw.estimate():>14,.0f}"
        f"   (error {abs(tw.estimate() - exact) / exact:.1%},"
        f" guaranteed <= {tw.error_bound():.0%} w.p. {tw.confidence():.0%})"
    )

    # --- sample-count: the Figure 1 tracker, O(1) amortised updates
    sc = SampleCountSketch(s1=256, s2=5, seed=42, initial_range=stream.size)
    sc.update_from_stream(stream)
    print(f"sample-count  ({sc.memory_words:>5} words): {sc.estimate():>14,.0f}")

    # --- naive-sampling baseline at the same budget
    ns = NaiveSamplingEstimator(s=1280, seed=42)
    ns.update_from_stream(stream)
    print(f"naive-sampling({ns.memory_words:>5} words): {ns.estimate():>14,.0f}")

    # --- deletions: both AMS trackers handle them online
    print("\ndeleting 10,000 stream elements ...")
    exact_fv = FrequencyVector.from_stream(stream)
    for v in stream[:10_000].tolist():
        tw.delete(int(v))
        sc.delete(int(v))
        exact_fv.delete(int(v))
    exact_after = exact_fv.self_join_size()
    print(f"exact      after deletes: {exact_after:>14,}")
    print(f"tug-of-war after deletes: {tw.estimate():>14,.0f}")
    print(f"sample-cnt after deletes: {sc.estimate():>14,.0f}")

    # --- sketches are mergeable (same seed => counters add)
    left = TugOfWarSketch(s1=256, s2=5, seed=99)
    right = TugOfWarSketch(s1=256, s2=5, seed=99)
    left.update_from_stream(stream[: stream.size // 2])
    right.update_from_stream(stream[stream.size // 2 :])
    merged = left.merge(right)
    print(f"\nmerged halves estimate:   {merged.estimate():>14,.0f} (exact {exact:,})")

    # --- engine: sharded build (partition -> build per shard -> merge)
    # is bit-identical to the single-shot build, and parallelisable.
    sharded = sharded_build(
        lambda: TugOfWarSketch(s1=256, s2=5, seed=99),
        stream,
        num_shards=4,
        max_workers=2,
    )
    single = TugOfWarSketch(s1=256, s2=5, seed=99)
    single.update_from_stream(stream)
    identical = bool(np.array_equal(sharded.counters, single.counters))
    print(f"4-way sharded build bit-identical to single-shot: {identical}")

    # --- engine: any sketch round-trips through the serialization
    # registry (JSON in, the right class back out).
    payload = dumps_sketch(sharded)
    restored = loads_sketch(payload)
    print(
        f"serialised {len(payload):,} bytes -> {type(restored).__name__}, "
        f"estimate {restored.estimate():>14,.0f}"
    )


if __name__ == "__main__":
    main()
