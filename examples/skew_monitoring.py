#!/usr/bin/env python
"""Skew monitoring: detect a hot-key outbreak from a tiny synopsis.

The paper's introduction motivates self-join tracking as a skew
monitor: SJ(R)/n is the average frequency of a stream member, so a
rising normalized self-join size means the workload is concentrating on
hot keys.  This example simulates a key-value workload that drifts from
uniform to heavily skewed (and partially recovers via deletions/expiry)
and shows a 640-word tug-of-war sketch tracking the exact skew curve,
including through deletions — something a fixed sample handles poorly.

It also demonstrates Fact 1.2: inferring a distribution parameter from
the tracked self-join size alone.

Run:  python examples/skew_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import FrequencyVector, TugOfWarSketch
from repro.core.bounds import exponential_parameter_from_sj, exponential_sj


def phase_stream(rng: np.random.Generator, phase: str, size: int) -> np.ndarray:
    """One batch of key accesses; later phases concentrate on few keys."""
    if phase == "uniform":
        return rng.integers(0, 4096, size=size)
    if phase == "warming":
        hot = rng.integers(0, 16, size=size // 4)
        cold = rng.integers(0, 4096, size=size - hot.size)
        return np.concatenate([hot, cold])
    if phase == "hot":
        hot = rng.integers(0, 4, size=size // 2)
        cold = rng.integers(0, 4096, size=size - hot.size)
        return np.concatenate([hot, cold])
    raise ValueError(phase)


def main() -> None:
    rng = np.random.default_rng(11)
    sketch = TugOfWarSketch(s1=128, s2=5, seed=3)
    exact = FrequencyVector()
    window: list[int] = []  # retention window: oldest entries expire

    print(f"{'phase':<10} {'n':>8} {'skew (exact)':>13} {'skew (sketch)':>14} {'alarm':>6}")
    schedule = ["uniform", "uniform", "warming", "warming", "hot", "hot"]
    for step, phase in enumerate(schedule):
        batch = phase_stream(rng, phase, 20_000)
        for v in batch.tolist():
            sketch.insert(int(v))
            exact.insert(int(v))
            window.append(int(v))
        # Expire the oldest half-batch: deletions keep the synopsis
        # aligned with the retention window.
        expired, window = window[:10_000], window[10_000:]
        for v in expired:
            sketch.delete(v)
            exact.delete(v)

        n = exact.total
        skew_exact = exact.self_join_size() / n
        skew_est = sketch.estimate() / n
        alarm = "HOT!" if skew_est > 20.0 else ""
        print(
            f"{phase:<10} {n:>8,} {skew_exact:>13.2f} {skew_est:>14.2f} {alarm:>6}"
        )

    # Fact 1.2: if the workload were exponential, the tracked SJ pins
    # down its parameter exactly.
    n = exact.total
    sj_est = sketch.estimate()
    sj_cap = min(sj_est, 0.999 * n * n)  # guard the formula's domain
    a = exponential_parameter_from_sj(n, sj_cap)
    print(
        f"\nFact 1.2: an exponential workload with this SJ would have "
        f"parameter a = {a:.4f}"
        f" (check: SJ(a) = {exponential_sj(n, a):,.0f} vs tracked {sj_est:,.0f})"
    )
    print(
        f"synopsis size: {sketch.memory_words} words vs "
        f"{exact.distinct:,} histogram buckets for the exact answer"
    )


if __name__ == "__main__":
    main()
