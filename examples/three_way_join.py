#!/usr/bin/env python
"""Three-way join estimation — the paper's stated future work, built.

Section 5: "Future work includes ... extending the work to more general
scenarios such as three-way joins."  This example estimates
|R1 ⋈ R2 ⋈ R3| (all joins on one attribute) from per-relation
signatures only, using the product-of-families construction in
repro.core.multijoin, and shows how the error scales with the signature
size k.

Run:  python examples/three_way_join.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import MultiJoinFamily


def exact_three_way(rels: list[np.ndarray]) -> int:
    counters = [Counter(r.tolist()) for r in rels]
    shared = set(counters[0]) & set(counters[1]) & set(counters[2])
    return sum(counters[0][v] * counters[1][v] * counters[2][v] for v in shared)


def main() -> None:
    rng = np.random.default_rng(21)

    # orders ⋈ lineitem ⋈ shipments on customer id, moderately skewed.
    relations = [
        (rng.zipf(1.4, size=30_000) % 300).astype(np.int64),
        (rng.zipf(1.3, size=60_000) % 300).astype(np.int64),
        rng.integers(0, 300, size=10_000, dtype=np.int64),
    ]
    exact = exact_three_way(relations)
    print(f"exact |R1 ⋈ R2 ⋈ R3| = {exact:,}\n")

    print(f"{'k (words/rel)':>14} {'estimate':>16} {'rel. error':>11}")
    for k in (64, 256, 1024, 4096, 16_384):
        family = MultiJoinFamily(k=k, ways=3, seed=k)
        sigs = family.signatures()
        for sig, rel in zip(sigs, relations):
            sig.update_from_stream(rel)      # incremental insert/delete also works
        est = family.join_estimate(sigs)
        print(f"{k:>14,} {est:>16,.0f} {abs(est - exact) / exact:>11.1%}")

    # Signatures remain incrementally maintainable: a burst of updates
    # on one relation only touches that relation's k counters.
    family = MultiJoinFamily(k=4096, ways=3, seed=1)
    sigs = family.signatures()
    for sig, rel in zip(sigs, relations):
        sig.update_from_stream(rel)
    for v in relations[2][:2_000].tolist():
        sigs[2].delete(int(v))
    truncated = relations[2][2_000:]
    exact_after = exact_three_way([relations[0], relations[1], truncated])
    print(
        f"\nafter deleting 2,000 shipment tuples: "
        f"exact {exact_after:,}, estimate {family.join_estimate(sigs):,.0f}"
    )


if __name__ == "__main__":
    main()
