#!/usr/bin/env python
"""Join-size estimation for query optimization (Section 4 end to end).

Builds a small star-schema-ish database, tracks one k-TW signature per
relation (k words each, maintained incrementally), and shows:

1. pairwise join-size estimates from signatures alone, with the
   Lemma 4.4 error bound alongside;
2. a greedy optimizer choosing a join order from the k-TW catalog vs
   from exact statistics vs from a sample catalog at equal storage;
3. the Section 4.4 crossover: when self-join sizes are small relative
   to n*sqrt(B), k-TW needs far fewer words than sampling.

Run:  python examples/join_estimation.py
"""

from __future__ import annotations

import numpy as np

from repro import Relation, SampleCatalog, SignatureCatalog, choose_join_order
from repro.core.bounds import ktw_signature_words, sample_signature_words
from repro.relational.optimizer import plan_cost


def build_database(rng: np.random.Generator) -> dict[str, np.ndarray]:
    """Four relations joining on one attribute (customer id)."""
    heavy_customers = rng.zipf(1.4, size=40_000) % 2_000
    return {
        "orders": heavy_customers.astype(np.int64),
        "lineitem": (rng.zipf(1.3, size=80_000) % 2_000).astype(np.int64),
        "returns": rng.integers(0, 2_000, size=5_000, dtype=np.int64),
        "vip": rng.integers(0, 50, size=1_000, dtype=np.int64),
    }


def main() -> None:
    rng = np.random.default_rng(5)
    streams = build_database(rng)
    relations = {name: Relation(name, vals) for name, vals in streams.items()}
    sizes = {name: rel.size for name, rel in relations.items()}

    k = 1024
    ktw = SignatureCatalog(k=k, seed=17)
    # Equal storage for the sampling catalog: expected k values/relation.
    for name, vals in streams.items():
        ktw.register(name, vals)
    sample = SampleCatalog(p=k / max(sizes.values()), seed=17)
    for name, vals in streams.items():
        sample.register(name, vals)

    print(f"k-TW catalog: {len(ktw)} relations x {k} words")
    print(f"{'pair':<22} {'exact':>12} {'k-TW est':>12} {'±bound':>11} {'sample est':>12}")
    names = list(streams)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            exact = relations[a].join_size(relations[b])
            est = ktw.join_estimate(a, b)
            bound = ktw.join_error_bound(a, b)
            s_est = sample.join_estimate(a, b)
            print(
                f"{a + ' x ' + b:<22} {exact:>12,} {est:>12,.0f} "
                f"{bound:>11,.0f} {s_est:>12,.0f}"
            )

    # --- optimizer comparison -------------------------------------------
    class ExactOracle:
        def join_estimate(self, a: str, b: str) -> float:
            return float(relations[a].join_size(relations[b]))

    oracle = ExactOracle()
    for label, catalog in [("exact", oracle), ("k-TW", ktw), ("sample", sample)]:
        plan = choose_join_order(names, sizes, catalog)
        true_cost = plan_cost(plan.order, sizes, oracle.join_estimate)
        print(
            f"\n{label:<7} plan: {' >> '.join(plan.order)}"
            f"\n        estimated cost {plan.estimated_cost:,.0f}, "
            f"true cost {true_cost:,.0f}"
        )

    # --- Section 4.4 storage comparison -----------------------------------
    n = sizes["orders"]
    b_sanity = float(n)  # most demanding sanity bound
    sj_o = relations["orders"].self_join_size()
    sj_l = relations["lineitem"].self_join_size()
    need_ktw = ktw_signature_words(sj_o, sj_l, b_sanity)
    need_sample = sample_signature_words(n, b_sanity)
    print(
        f"\nSection 4.4 at B = n = {n:,}: "
        f"k-TW needs ~{need_ktw:,.0f} words, sampling ~{need_sample:,.0f} words "
        f"({'k-TW wins' if need_ktw < need_sample else 'sampling wins'})"
    )


if __name__ == "__main__":
    main()
