#!/usr/bin/env python
"""Figure gallery: re-draw any paper figure as an ASCII plot.

Runs the accuracy sweep behind Figures 2-14 (or the estimator-spread
study of Figure 15) and renders it in the terminal.  By default the
streams are scaled to 10% of the paper's sizes so everything finishes
in seconds; pass --scale 1.0 for paper scale.

Run:  python examples/figure_gallery.py 2          # Figure 2 (zipf1.0)
      python examples/figure_gallery.py 14 --scale 1.0
      python examples/figure_gallery.py 15
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments import figures
from repro.experiments.metrics import convergence_from_sweep

MARKS = {"sample-count": "s", "tug-of-war": "t", "naive-sampling": "n"}


def ascii_plot(sweep, height: int = 19, y_max: float = 2.0) -> str:
    """Render normalized estimates vs log2(sample size)."""
    rows = sweep.rows()
    width = len(rows)
    grid = [[" "] * (width * 3) for _ in range(height)]

    def y_to_row(y: float) -> int:
        clamped = min(max(y, 0.0), y_max)
        return int(round((1.0 - clamped / y_max) * (height - 1)))

    actual_row = y_to_row(1.0)
    for col in range(width * 3):
        grid[actual_row][col] = "-"
    for col, (_, by_algo) in enumerate(rows):
        for algo, norm in by_algo.items():
            row = y_to_row(norm)
            cell = col * 3 + 1
            grid[row][cell] = MARKS[algo] if grid[row][cell] in " -" else "*"

    lines = [
        f"# {sweep.dataset}: normalized estimate vs log2(s)   "
        f"(n={sweep.n:,}, exact SJ={sweep.exact_self_join:.3g})",
        f"# marks: s=sample-count t=tug-of-war n=naive-sampling "
        f"*=overlap; ---- = actual (1.0); y clipped to [0, {y_max}]",
    ]
    for r, row in enumerate(grid):
        label = f"{y_max * (1 - r / (height - 1)):>5.2f} |"
        lines.append(label + "".join(row))
    lines.append("      +" + "-" * (width * 3))
    lines.append("       " + "".join(f"{int(np.log2(s)):>2} " for s, _ in rows))
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", type=int, help="paper figure number (2-15)")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-log2-s", type=int, default=14)
    args = parser.parse_args()

    if args.figure == 15:
        out = figures.figure15(estimators=1024, scale=args.scale, seed=args.seed)
        print(figures.format_figure15(out))
        return

    sweep = figures.figure(
        args.figure,
        scale=args.scale,
        max_log2_s=args.max_log2_s,
        seed=args.seed,
    )
    print(ascii_plot(sweep))
    print()
    conv = convergence_from_sweep(sweep)
    print("minimum sample size within 15% relative error (and staying within):")
    for algo, s in conv.items():
        print(f"  {algo:<15} {s if s is not None else 'not converged'}")
    print()
    print(sweep.format_table())


if __name__ == "__main__":
    main()
