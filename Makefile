# Convenience targets; `make test` is the tier-1 verification command.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench-engine install dev-install clean

test:
	$(PYTHON) -m pytest -x -q

# Writes the machine-readable summary to the repo root (committed, so
# the perf trajectory is reviewable across PRs).
bench-smoke:
	$(PYTHON) benchmarks/bench_engine.py --quick --json BENCH_engine.json

bench-engine:
	$(PYTHON) benchmarks/bench_engine.py --json BENCH_engine.json

install:
	pip install .

dev-install:
	pip install -e ".[test]"

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache build dist *.egg-info src/*.egg-info
