# Convenience targets; `make test` is the tier-1 verification command.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench-engine install dev-install clean

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) benchmarks/bench_engine.py --quick

bench-engine:
	$(PYTHON) benchmarks/bench_engine.py

install:
	pip install .

dev-install:
	pip install -e ".[test]"

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache build dist *.egg-info src/*.egg-info
