"""Figure 15: robustness of the individual tug-of-war estimators X_ij.

Reproduces the paper's plot of ~10^3 individual estimators on zipf1.5,
sorted by value.  Shape assertions (the paper's observations):

* the median individual estimator is in the right ballpark (slightly
  below the actual value in the paper's run);
* the estimators are *spread*, not clustered at the actual value —
  which is why averaging/median combining is essential;
* overestimates reach farther (in absolute error) than underestimates
  (squaring skews the distribution right: X = Z^2 >= 0).
"""

from __future__ import annotations

import numpy as np
from conftest import emit, run_once

from repro.experiments.figures import figure15, format_figure15


def test_fig15_estimator_spread(benchmark, scale):
    out = run_once(benchmark, figure15, estimators=1024, scale=scale, seed=0)
    emit(f"Figure 15 (scale={scale})", format_figure15(out))

    x = out["sorted_estimators"]
    actual = out["actual"]
    assert np.all(np.diff(x) >= 0)

    # Median individual estimator within a factor 2 of actual.
    assert 0.5 * actual <= out["median"] <= 2.0 * actual

    # Spread: a sizeable fraction of estimators are > 50% away from
    # actual (they are NOT clustered around it).
    far = np.mean(np.abs(x - actual) > 0.5 * actual)
    assert far > 0.25

    # Overestimates incur larger absolute error than underestimates.
    assert x.max() - actual > actual - x.min()

    # And yet the median-of-means over the same estimators is sharp:
    from repro.core.estimators import median_of_means

    combined = median_of_means(x.reshape(4, 256))
    assert abs(combined - actual) / actual < 0.25
