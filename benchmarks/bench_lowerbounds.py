"""Lower-bound demonstrations: Lemma 2.3 and Theorem 4.3.

* Lemma 2.3 — naive-sampling with an o(sqrt n) sample reports ~n on the
  "n/2 pairs" relation whose true self-join is 2n: a factor-2 failure
  with sizeable probability.  With an Omega(sqrt n) sample the failure
  disappears, bracketing the bound from both sides.
* Theorem 4.3 — sampling signatures far below n^2/B bits cannot tell
  join size B from 2B on the D1/D2 construction; at the Lemma 4.2
  budget they can.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.experiments.lowerbounds import lemma23_demo, theorem43_demo


def test_lemma23_small_sample_fails(benchmark, scale):
    n = max(2_000, int(20_000 * scale))
    out = run_once(benchmark, lemma23_demo, n=n, trials=100, seed=0)
    emit(
        "Lemma 2.3: naive-sampling with o(sqrt n) sample",
        f"n = {out['n']}, sample = {out['sample_size']} (sqrt n = {int(n**0.5)})\n"
        f"SJ(R1) = {out['sj_r1']}, median estimate = {out['median_estimate_r1']:.0f}\n"
        f"SJ(R2) = {out['sj_r2']}, median estimate = {out['median_estimate_r2']:.0f}\n"
        f"factor-2 failure rate on R2: {out['factor2_failure_rate']:.0%}",
    )
    # R1 is estimated exactly (all-distinct sample), R2 fails by ~2x
    # with sizeable probability — the lemma's separation.
    assert abs(out["median_estimate_r1"] - out["sj_r1"]) / out["sj_r1"] < 0.05
    assert out["factor2_failure_rate"] >= 0.5


def test_lemma23_large_sample_succeeds(benchmark, scale):
    n = max(2_000, int(20_000 * scale))
    # 8 sqrt(n) samples: comfortably Omega(sqrt n).
    s = int(8 * n**0.5)
    out = run_once(benchmark, lemma23_demo, n=n, sample_size=s, trials=100, seed=1)
    emit(
        "Lemma 2.3 control: Omega(sqrt n) sample",
        f"sample = {s}; median R2 estimate = {out['median_estimate_r2']:.0f} "
        f"(SJ = {out['sj_r2']}); failure rate {out['factor2_failure_rate']:.0%}",
    )
    assert out["factor2_failure_rate"] <= 0.2


def test_theorem43_sub_bound_signature_fails(benchmark):
    out = run_once(benchmark, theorem43_demo, k=8, c=16, trials=60, seed=0)
    emit(
        "Theorem 4.3: sampling signature below the n^2/B bound",
        f"n = {out['n']}, B = {out['sanity_bound']}, "
        f"signature = {out['signature_words']} words "
        f"(lower bound {out['lower_bound_bits']:.0f} bits)\n"
        f"B-vs-2B misclassification rate: {out['misclassification_rate']:.0%}",
    )
    assert out["misclassification_rate"] >= 0.15


def test_theorem43_full_budget_succeeds(benchmark):
    out = run_once(
        benchmark, theorem43_demo, k=8, c=16, signature_words=10**6, trials=60, seed=1
    )
    emit(
        "Theorem 4.3 control: full-relation signature",
        f"misclassification rate: {out['misclassification_rate']:.0%}",
    )
    assert out["misclassification_rate"] == 0.0
