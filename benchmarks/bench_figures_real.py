"""Figures 9-14: text, spatial, and pathological data sets.

* Figs 9-11 (wuther, genesis, brown2) — text behaves like Zipf(1.0):
  both AMS estimators converge, naive-sampling trails.
* Figs 12-13 (xout1, yout1) — spatial coordinates: usual ordering, with
  sample-count almost as bad as naive-sampling (paper's observation).
* Fig 14 (path) — the constructed separator: tug-of-war converges with
  few words while sample-count needs Theta(sqrt t) (pathologically slow).
"""

from __future__ import annotations

from conftest import assert_final_accuracy, emit, np_seed_for, run_once

from repro.experiments.figures import run_figure
from repro.experiments.metrics import convergence_from_sweep

AMS = ("tug-of-war", "sample-count")
FIGS = {"wuther": 9, "genesis": 10, "brown2": 11, "xout1": 12, "yout1": 13, "path": 14}


def _figure(benchmark, name, scale, max_log2_s, repeats):
    sweep = run_once(
        benchmark,
        run_figure,
        name,
        scale=scale,
        max_log2_s=max_log2_s,
        seed=np_seed_for(name),
        repeats=repeats,
    )
    conv = convergence_from_sweep(sweep)
    emit(
        f"Figure {FIGS[name]} ({name}, scale={scale})",
        sweep.format_table()
        + "\n15%-convergence: "
        + ", ".join(f"{a}={s}" for a, s in conv.items()),
    )
    return sweep, conv


def test_fig09_wuther(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "wuther", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, AMS, tol=0.5)
    assert conv["tug-of-war"] is not None
    # Each cell is one randomized run; naive-sampling may land within a
    # couple of powers of two of tug-of-war on a lucky draw, but never
    # dramatically ahead.
    assert conv["naive-sampling"] is None or (
        4 * conv["naive-sampling"] >= conv["tug-of-war"]
    )


def test_fig10_genesis(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "genesis", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, AMS, tol=0.5)
    assert conv["tug-of-war"] is not None and conv["sample-count"] is not None


def test_fig11_brown2(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "brown2", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, AMS, tol=0.5)
    assert conv["tug-of-war"] is not None


def test_fig12_xout1(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "xout1", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, ("tug-of-war",), tol=0.5)
    assert conv["tug-of-war"] is not None


def test_fig13_yout1(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "yout1", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, ("tug-of-war",), tol=0.5)
    assert conv["tug-of-war"] is not None


def test_fig14_path(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "path", scale, max_log2_s, repeats)
    # The separation the data set was built for: tug-of-war converges
    # strictly earlier than sample-count (which, per Theorem 2.1's
    # Theta(sqrt t) bound, needs a large sample to ever see the one
    # heavy value among 40,000 singletons).
    assert conv["tug-of-war"] is not None
    assert conv["sample-count"] is None or (
        conv["tug-of-war"] < conv["sample-count"]
    )
    assert_final_accuracy(sweep, ("tug-of-war",), tol=0.4)
