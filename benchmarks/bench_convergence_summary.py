"""Section 3.1 summary: 15%-convergence words across all 13 data sets.

Reproduces the paper's headline: "tug-of-war needed only 4-256 memory
words, depending on the data set ... on average over 4 times fewer than
sample-count, and over 50 times fewer than naive-sampling."  Exact
multipliers vary run to run (each point is one randomized run, as in
the paper); the asserted shape is the ordering of the geometric means
across data sets.
"""

from __future__ import annotations

import numpy as np
from conftest import emit, run_once

from repro.experiments.tables import convergence_table, format_convergence_table


def _geomean_with_penalty(values, max_log2_s):
    """Geometric mean of convergence sizes; None counts as 4x the sweep max."""
    filled = [v if v is not None else (1 << max_log2_s) * 4 for v in values]
    return float(np.exp(np.mean(np.log(filled))))


def test_convergence_summary(benchmark, scale, max_log2_s):
    table = run_once(
        benchmark,
        convergence_table,
        scale=scale,
        max_log2_s=max_log2_s,
        seed=0,
        repeats=1,
    )
    emit(
        f"Section 3.1 convergence summary (scale={scale})",
        format_convergence_table(table),
    )

    tw = [per_algo["tug-of-war"] for per_algo in table.values()]
    sc = [per_algo["sample-count"] for per_algo in table.values()]
    ns = [per_algo["naive-sampling"] for per_algo in table.values()]

    # Tug-of-war converges on every data set within the sweep.
    assert all(v is not None for v in tw)

    g_tw = _geomean_with_penalty(tw, max_log2_s)
    g_sc = _geomean_with_penalty(sc, max_log2_s)
    g_ns = _geomean_with_penalty(ns, max_log2_s)
    emit(
        "geometric-mean convergence words",
        f"tug-of-war={g_tw:.1f}  sample-count={g_sc:.1f}  naive-sampling={g_ns:.1f}\n"
        f"sample-count/tug-of-war = {g_sc / g_tw:.1f}x   "
        f"naive/tug-of-war = {g_ns / g_tw:.1f}x",
    )

    # Paper ordering: tug-of-war < sample-count < naive-sampling on
    # average, with naive several times worse than tug-of-war.  At
    # reduced scale naive-sampling is flattered (the largest samples
    # approach the stream length, where it becomes exact), so the
    # multiplier is asserted leniently there and strictly at paper scale.
    assert g_tw <= g_sc
    assert g_sc <= g_ns
    assert g_ns / g_tw >= 2.5

    if scale >= 1.0:
        assert g_ns / g_tw >= 8.0
        # "4-256 memory words" for tug-of-war at paper scale; allow one
        # power of two of slack for run-to-run variation.
        assert max(tw) <= 512
