"""Join-signature accuracy study (the paper's stated future work).

k-TW vs sample signatures at matched memory budgets on relation pairs
with Table 1 profiles, plus the Lemma 4.4 variance-bound check.
Asserted shapes:

* k-TW error shrinks with k roughly like 1/sqrt(k) (within slack);
* the empirical RMS error respects the Lemma 4.4 bound
  sqrt(2 SJ(F) SJ(G) / k);
* on a low-skew pair (uniform profile), k-TW beats sampling at equal
  storage — the Section 4.4 prediction.
"""

from __future__ import annotations

import numpy as np
from conftest import emit, run_once

from repro.experiments.joins import (
    format_join_sweep,
    join_accuracy_sweep,
    ktw_error_vs_bound,
    make_relation_pair,
)


def test_join_accuracy_uniform_profile(benchmark, scale):
    # A dense low-skew pair: uniform over t = n/10, so the join is
    # large (B ~ n^2/t = 10n) while the self-joins stay near n —
    # exactly the regime where Section 4.4 predicts k-TW crushes
    # sampling at small budgets (k-TW needs ~(C/B)^2 ~ 1 word,
    # sampling needs ~n^2/B = t words).
    import numpy as np

    from repro.data.synthetic import uniform as uniform_stream

    n = max(4_000, int(50_000 * scale))
    rng = np.random.default_rng(1)
    left = uniform_stream(n, n // 10, rng=rng)
    right = uniform_stream(n, n // 10, rng=rng)
    out = run_once(
        benchmark,
        join_accuracy_sweep,
        left,
        right,
        budgets=(16, 64, 256, 1024),
        seed=2,
        repeats=5,
    )
    emit("join accuracy, dense uniform profile", format_join_sweep(out))

    ktw = {p.memory_words: p.relative_error for p in out["points"] if p.scheme == "k-TW"}
    samp = {
        p.memory_words: p.relative_error for p in out["points"] if p.scheme == "sample"
    }
    # Error decreases with budget (median over repeats; allow slack).
    assert ktw[1024] <= ktw[16] + 0.05
    # k-TW is sharp already at modest budgets...
    assert ktw[256] <= 0.2
    assert ktw[1024] <= 0.1
    # ...and at 16 words — where sampling keeps an expected 16 of n
    # values and almost surely sees no joining pair — k-TW is already
    # usable while sampling is blind (estimates ~0, relative error ~1).
    assert ktw[16] <= samp[16] - 0.3


def test_join_accuracy_skewed_profile(benchmark, scale):
    n = max(4_000, int(50_000 * scale))
    left, right = make_relation_pair("zipf1.0", n=n, overlap=0.8, seed=3)
    out = run_once(
        benchmark,
        join_accuracy_sweep,
        left,
        right,
        budgets=(64, 1024),
        seed=4,
        repeats=5,
    )
    emit("join accuracy, zipf1.0 profile", format_join_sweep(out))
    ktw = {p.memory_words: p.relative_error for p in out["points"] if p.scheme == "k-TW"}
    assert ktw[1024] <= 0.6  # converged to a useful estimate


def test_lemma44_bound(benchmark, scale):
    n = max(2_000, int(20_000 * scale))
    left, right = make_relation_pair("mf2", n=n, overlap=1.0, seed=5)
    out = run_once(
        benchmark, ktw_error_vs_bound, left, right, k=256, trials=24, seed=6
    )
    emit(
        "Lemma 4.4 bound check (mf2 profile)",
        f"exact join = {out['exact_join']:.4g}\n"
        f"RMS error  = {out['rms_error']:.4g}\n"
        f"bound      = {out['bound']:.4g}  (ratio {out['ratio']:.2f}, must be <~ 1)",
    )
    assert out["ratio"] <= 1.3


def test_error_scales_inverse_sqrt_k(benchmark, scale):
    n = max(2_000, int(20_000 * scale))
    left, right = make_relation_pair("uniform", n=n, overlap=1.0, seed=7)
    results = {}

    def sweep_ks():
        for k in (16, 256):
            results[k] = ktw_error_vs_bound(left, right, k=k, trials=24, seed=8)
        return results

    run_once(benchmark, sweep_ks)
    ratio = results[16]["rms_error"] / max(results[256]["rms_error"], 1e-12)
    emit(
        "k-TW error scaling",
        f"RMS(k=16) / RMS(k=256) = {ratio:.2f} (theory: sqrt(256/16) = 4)",
    )
    # 1/sqrt(k) scaling within generous slack (24 trials is noisy).
    assert 1.5 <= ratio <= 12.0
