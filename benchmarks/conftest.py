"""Shared configuration for the figure/table reproduction benchmarks.

Scale control
-------------
``REPRO_SCALE`` selects the experiment size:

* ``quick`` (default) — 5% of each paper stream, sample sizes up to
  2^12: every qualitative shape survives, minutes for the whole suite;
* ``full``  — the paper's exact sizes (streams up to 1M elements,
  sample sizes to 2^14);
* any float in (0, 1] — custom fraction.

Every benchmark prints the same rows/series the corresponding paper
table or figure reports, so the output is the reproduction artifact.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import default_scale


@pytest.fixture(scope="session")
def scale() -> float:
    """Stream-length fraction for this run (REPRO_SCALE)."""
    return default_scale()


@pytest.fixture(scope="session")
def max_log2_s(scale) -> int:
    """Largest sample-size exponent: 14 at paper scale, 12 when scaled."""
    return 14 if scale >= 1.0 else 12


@pytest.fixture(scope="session")
def repeats(scale) -> int:
    """Estimates per plotted point (paper: 1)."""
    return 1


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, body: str) -> None:
    """Print a reproduction artifact with a recognisable banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}")


def assert_final_accuracy(sweep, algorithms, tol):
    """Largest-budget estimates must be within tol of the exact SJ."""
    last_s = max(s for s, _ in sweep.rows())
    final = dict(sweep.rows())[last_s]
    for algo in algorithms:
        norm = final[algo]
        assert abs(norm - 1.0) <= tol, (
            f"{sweep.dataset}: {algo} normalized estimate {norm:.3f} at "
            f"s={last_s} outside ±{tol:.0%}"
        )


def np_seed_for(name: str) -> int:
    """Stable per-dataset seed so benches are reproducible run to run."""
    import zlib

    return zlib.crc32(name.encode()) % (2**31)
