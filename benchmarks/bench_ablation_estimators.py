"""Ablation: estimator combination (median-of-means vs mean vs median).

Figure 15's lesson is that individual X_ij are widely spread, so the
combination stage matters.  This ablation runs the three combiners at
equal total budget s over many seeds and compares their error
distributions.  Expected shape:

* median-of-means and mean have similar typical (median) error;
* the *tail* error (90th percentile) of the plain mean is worse — the
  median stage is what buys confidence (Theorem 2.2's 2^(-s2/2));
* the plain median of individual estimators is biased low (X = Z^2 has
  a right-skewed distribution) and loses accuracy.
"""

from __future__ import annotations

import numpy as np
from conftest import emit, run_once

from repro.core.tugofwar import TugOfWarSketch
from repro.data.registry import load_dataset


def _combiner_errors(values, exact, s1, s2, seeds):
    errors = {"median-of-means": [], "mean": [], "median": []}
    for seed in seeds:
        sk = TugOfWarSketch(s1=s1, s2=s2, seed=seed)
        sk.update_from_stream(values)
        errors["median-of-means"].append(abs(sk.estimate() - exact) / exact)
        errors["mean"].append(abs(sk.estimate_mean() - exact) / exact)
        errors["median"].append(abs(sk.estimate_median() - exact) / exact)
    return errors


def test_combiner_ablation(benchmark, scale):
    values = load_dataset("zipf1.5", rng=0, scale=min(scale, 0.2))
    from repro.core.frequency import self_join_size

    exact = self_join_size(values)
    errors = run_once(
        benchmark, _combiner_errors, values, exact, 24, 5, list(range(40))
    )

    rows = []
    for name, errs in errors.items():
        arr = np.asarray(errs)
        rows.append(
            f"{name:<16} median err {np.median(arr):.3f}   "
            f"p90 err {np.quantile(arr, 0.9):.3f}   max {arr.max():.3f}"
        )
    emit("combiner ablation (zipf1.5, s = 120 words over 40 seeds)", "\n".join(rows))

    mom = np.asarray(errors["median-of-means"])
    mean = np.asarray(errors["mean"])
    med = np.asarray(errors["median"])

    # Typical error: median-of-means comparable to the mean (the median
    # stage costs a little efficiency in exchange for tail guarantees).
    assert np.median(mom) <= np.median(mean) * 1.6
    assert np.quantile(mom, 0.9) <= np.quantile(mean, 0.9) * 1.6
    # Every median-of-means run respects the Theorem 2.2 bound
    # 4/sqrt(s1) (the plain mean only has a Chebyshev guarantee).
    assert mom.max() <= 4.0 / np.sqrt(24)
    # A plain median of individual X_ij is biased low (X = Z^2 is
    # right-skewed): clearly worse typical error.
    assert np.median(med) >= np.median(mom) * 1.5
