"""Table 1 reproduction: data sets and their characteristics.

Generates all 13 data sets and prints length / domain size / self-join
size against the paper's reported values.  The shape that must hold:
lengths match by construction, domain sizes land in the right order of
magnitude, and self-join sizes are within a small factor of the paper's
(they are random draws from the same distributions).
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.data.registry import DATASETS
from repro.experiments.tables import format_table1, table1


def test_table1(benchmark, scale):
    rows = run_once(benchmark, table1, seed=0, scale=scale)
    emit(f"Table 1 (scale={scale})", format_table1(rows))

    assert len(rows) == 13
    for row in rows:
        expected_n = max(1, round(row.paper_length * scale))
        assert abs(row.measured_length - expected_n) <= 1, row.name

    if scale >= 1.0:
        # Full scale: self-join sizes within 2x of the paper for every
        # data set (exact for `path`), domains within ~3x.
        for row in rows:
            ratio = row.measured_self_join / row.paper_self_join
            assert 0.5 <= ratio <= 2.0, f"{row.name}: SJ ratio {ratio:.2f}"
            dom_ratio = row.measured_domain / row.paper_domain
            assert 1 / 3 <= dom_ratio <= 3.0, f"{row.name}: domain ratio {dom_ratio:.2f}"
        path = next(r for r in rows if r.name == "path")
        assert path.measured_self_join == 680_000
        assert path.measured_domain == 40_001


def test_table1_spans(benchmark, scale):
    """The paper's spread claim: 50x in lengths, ~3 orders in domain,
    ~4 orders in self-join sizes."""
    rows = run_once(benchmark, table1, seed=1, scale=scale)
    lengths = [r.paper_length for r in rows]
    domains = [r.paper_domain for r in rows]
    sjs = [r.paper_self_join for r in rows]
    assert max(lengths) / min(lengths) >= 50
    assert max(domains) / min(domains) >= 1_000
    assert max(sjs) / min(sjs) >= 5_000
    assert len({r.kind for r in rows}) == 4
