"""Update/query cost model (Theorems 2.1 and 2.2 time bounds).

Measures actual per-operation cost of the trackers:

* sample-count inserts are O(1) amortised — cost must stay flat as the
  sample size s grows 64x;
* tug-of-war inserts are O(s) — cost must grow with s;
* sample-count queries are O(s); the fast-query variant is O(s2);
* tug-of-war queries are O(s).

These benchmarks use pytest-benchmark's timing (many rounds) since each
operation is microseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.naivesampling import NaiveSamplingEstimator
from repro.core.samplecount import SampleCountFastQuery, SampleCountSketch
from repro.core.tugofwar import TugOfWarSketch

STREAM = np.random.default_rng(0).integers(0, 1000, size=20_000).astype(np.int64)


def _insert_batch(tracker, values):
    for v in values:
        tracker.insert(v)


@pytest.mark.parametrize("s1", [16, 256, 1024])
def test_samplecount_insert_cost(benchmark, s1):
    """O(1) amortised: per-insert cost roughly flat in s."""
    sk = SampleCountSketch(s1=s1, s2=1, seed=0, initial_range=STREAM.size)
    sk.update_from_stream(STREAM[:10_000])
    batch = STREAM[10_000:10_100].tolist()
    benchmark(_insert_batch, sk, batch)


@pytest.mark.parametrize("s1", [16, 256, 1024])
def test_tugofwar_insert_cost(benchmark, s1):
    """O(s): per-insert cost grows with the number of counters."""
    sk = TugOfWarSketch(s1=s1, s2=1, seed=0)
    batch = STREAM[:100].tolist()
    benchmark(_insert_batch, sk, batch)


@pytest.mark.parametrize("s1", [64, 1024])
def test_samplecount_query_cost(benchmark, s1):
    """O(s) query for the Figure 1 variant."""
    sk = SampleCountSketch(s1=s1, s2=4, seed=0, initial_range=STREAM.size)
    sk.update_from_stream(STREAM)
    benchmark(sk.estimate)


@pytest.mark.parametrize("s1", [64, 1024])
def test_samplecount_fastquery_cost(benchmark, s1):
    """O(s2) query for the fast-query variant (independent of s1)."""
    sk = SampleCountFastQuery(s1=s1, s2=4, seed=0, initial_range=STREAM.size)
    sk.update_from_stream(STREAM)
    benchmark(sk.estimate)


@pytest.mark.parametrize("s1", [64, 1024])
def test_tugofwar_query_cost(benchmark, s1):
    sk = TugOfWarSketch(s1=s1, s2=4, seed=0)
    sk.update_from_stream(STREAM)
    benchmark(sk.estimate)


def test_tugofwar_bulk_load(benchmark):
    """Vectorised bulk loading of a 20k stream into 1280 counters."""

    def build():
        sk = TugOfWarSketch(s1=256, s2=5, seed=0)
        sk.update_from_stream(STREAM)
        return sk

    benchmark(build)


def test_naive_sampling_insert_cost(benchmark):
    est = NaiveSamplingEstimator(s=1024, seed=0)
    est.update_from_stream(STREAM[:10_000])
    batch = STREAM[10_000:10_100].tolist()
    benchmark(_insert_batch, est, batch)
