"""Ablation: sample-count's deletion handling vs ignoring deletions.

The paper's eviction rule (delete(v) reverses the most recent undeleted
insert(v), dropping exactly the sample points that sampled it) is what
keeps the tracker unbiased under churn.  The strawman alternative — a
tracker that simply skips delete operations — drifts: both its n and
its counts describe a multiset that no longer exists.

Workload: a stream where deletions remove 20% of updates (the
Theorem 2.1 regime), heavily churning the hot values.  Expected shape:
the paper's tracker lands near the exact SJ of the surviving multiset;
the ignore-deletes strawman overestimates substantially.
"""

from __future__ import annotations

import numpy as np
from conftest import emit, run_once

from repro.core.frequency import FrequencyVector
from repro.core.samplecount import SampleCountSketch
from repro.streams.operations import Delete, Insert, mixed_workload


def _run_workload(seq, handle_deletes: bool, seed: int):
    sk = SampleCountSketch(s1=400, s2=5, seed=seed, initial_range=4_000)
    for op in seq:
        if isinstance(op, Insert):
            sk.insert(op.value)
        elif isinstance(op, Delete) and handle_deletes:
            sk.delete(op.value)
    return sk.estimate()


def test_deletion_handling_ablation(benchmark, scale):
    rng = np.random.default_rng(3)
    n = max(4_000, int(40_000 * scale))
    values = (rng.zipf(1.4, size=n) % 500).astype(np.int64)
    seq = mixed_workload(values, delete_fraction=0.2, rng=4)

    exact = FrequencyVector()
    for op in seq:
        if isinstance(op, Insert):
            exact.insert(op.value)
        elif isinstance(op, Delete):
            exact.delete(op.value)
    true_sj = exact.self_join_size()

    def run():
        handled = np.median([_run_workload(seq, True, s) for s in range(9)])
        ignored = np.median([_run_workload(seq, False, s) for s in range(9)])
        return handled, ignored

    handled, ignored = run_once(benchmark, run)
    emit(
        "deletion-handling ablation (20% deletes, zipf stream)",
        f"exact SJ of surviving multiset: {true_sj:,}\n"
        f"paper eviction rule:            {handled:,.0f} "
        f"({abs(handled - true_sj) / true_sj:.1%} error)\n"
        f"ignore-deletes strawman:        {ignored:,.0f} "
        f"({abs(ignored - true_sj) / true_sj:.1%} error)",
    )

    handled_err = abs(handled - true_sj) / true_sj
    ignored_err = abs(ignored - true_sj) / true_sj
    assert handled_err <= 0.35
    # The strawman tracks the wrong multiset: materially larger error.
    assert ignored_err >= handled_err * 1.5
    assert ignored > true_sj  # drifts upward (counts never shrink)
