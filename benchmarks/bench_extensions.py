"""Extension experiments: three-way joins and general frequency moments.

The paper's conclusion lists "extending the work to more general
scenarios such as three-way joins" as future work; Section 2 builds on
the general [AMS99] F_k machinery.  These benchmarks exercise both
extensions end to end:

* three-way chain-join estimation with :class:`MultiJoinFamily`
  (unbiasedness + error shrinking with k);
* F3/F4 estimation with the generalised sample-count estimator, at the
  [AMS99]-prescribed sample sizes.
"""

from __future__ import annotations

import numpy as np
from conftest import emit, run_once

from repro.core.moments import exact_moment, fk_estimate_offline, fk_sample_size_bound
from repro.core.multijoin import MultiJoinFamily
from repro.data.registry import load_dataset


def _exact_three_way(rels):
    from collections import Counter

    counters = [Counter(r.tolist()) for r in rels]
    shared = set(counters[0])
    for c in counters[1:]:
        shared &= set(c)
    return float(sum(counters[0][v] * counters[1][v] * counters[2][v] for v in shared))


def test_three_way_join_estimation(benchmark, scale):
    rng = np.random.default_rng(0)
    n = max(2_000, int(20_000 * scale))
    rels = [(rng.zipf(1.4, size=n) % 200).astype(np.int64) for _ in range(3)]
    exact = _exact_three_way(rels)

    def run():
        rows = {}
        for k in (256, 4096):
            errs = []
            for seed in range(9):
                fam = MultiJoinFamily(k, 3, seed=seed)
                sigs = fam.signatures()
                for sig, rel in zip(sigs, rels):
                    sig.update_from_stream(rel)
                est = fam.join_estimate(sigs)
                errs.append(abs(est - exact) / exact)
            rows[k] = float(np.median(errs))
        return rows

    rows = run_once(benchmark, run)
    emit(
        "three-way join estimation (zipf profile)",
        f"exact |R1 ⋈ R2 ⋈ R3| = {exact:.4g}\n"
        + "\n".join(f"k = {k:>5}: median relative error {e:.3f}" for k, e in rows.items()),
    )
    # Error shrinks with k and is usable at k = 4096.
    assert rows[4096] <= rows[256] + 0.05
    assert rows[4096] <= 0.5


def test_fk_moments(benchmark, scale):
    values = load_dataset("zipf1.0", rng=0, scale=min(scale, 0.1))
    rows = []

    def run():
        out = {}
        t = float(np.unique(values).size)
        for k in (2, 3, 4):
            exact = exact_moment(values, k)
            s1 = int(min(8192, fk_sample_size_bound(k, int(t), epsilon=0.7)))
            errs = [
                abs(fk_estimate_offline(values, k, s1, 5, rng=seed) - exact) / exact
                for seed in range(9)
            ]
            out[k] = (exact, s1, float(np.median(errs)))
        return out

    out = run_once(benchmark, run)
    for k, (exact, s1, err) in out.items():
        rows.append(f"F{k}: exact {exact:.4g}, s1 = {s1}, median rel. error {err:.3f}")
    emit("general frequency moments (zipf1.0)", "\n".join(rows))

    # At the [AMS99]-prescribed sample size every moment is estimated
    # within the targeted constant relative error (median of 9 runs).
    for k, (_, _, err) in out.items():
        assert err <= 0.7, f"F{k} error {err:.3f}"
