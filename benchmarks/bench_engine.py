#!/usr/bin/env python
"""Engine throughput benchmark: batched and sharded vs per-element.

Measures, on one synthetic Zipf stream:

1. **tug-of-war** — per-element ``insert`` loop vs the engine's
   vectorised ``update_from_stream`` bulk load, plus a 4-way sharded
   build (serial and threaded) that must merge to a **bit-identical**
   sketch;
2. **sample-count** — per-element loop vs the vectorised segment
   walker (states must match bit for bit);
3. **naive-sampling** — per-element reservoir offers vs skip-jump
   bulk offers (reservoirs must match bit for bit);
4. **windowed store** — timestamped ingestion throughput (serial and
   threaded) into a time-bucketed store plus merge-on-query latency
   over growing windows, with every windowed estimate checked
   **bit-identical** against a monolithic sketch of the same window;
5. **estimation service** — a load generator against
   :class:`repro.service.SketchService`: cold (merge-on-query) vs
   cached merged-window estimate latency (p50/p99), then query
   throughput under multi-threaded ingest+query churn, with the final
   concurrent state checked **bit-identical** against a serial replay;
6. **query planner** — DP enumeration scaling over chain/star/clique
   join graphs up to n = 12 relations (must stay sub-second, with
   bit-identical plans across repeated runs), and plan-quality regret
   of the sketch and bound-aware estimator policies against exact
   statistics on a seeded star workload (the DP must beat the greedy
   heuristic's true cost);
7. **cluster scale-out** — the first measured multi-process scaling
   curve: ingest throughput and scatter–gather query p50/p99 against
   real spawned shard-worker fleets at 1/2/4/8 shards, with every
   cluster estimate checked **bit-identical** against a monolithic
   store of the same stream.  The 2x 4-shard bar is enforced when the
   host has >= 4 usable cores (one per worker); on smaller hosts the
   curve is still measured and reported, but a wall-clock speedup bar
   is physically meaningless there, so it is skipped with a notice.
   The section additionally races the two wire protocols end to end:
   batched ingest through an asyncio front end over a 2-shard fleet
   in line-JSON vs the length-prefixed binary protocol (zero-copy
   packed columns, pipelined), with both fleets' estimates checked
   **bit-identical** against an in-process service;
8. **fault tolerance** — replicated-fleet behaviour under injected
   faults: ingest overhead vs replication factor 1/2/3 (fan-out to a
   replica set, every factor bit-identical to a monolithic store),
   hedged vs unhedged query p99 with one deterministically stalled
   replica, and end-to-end repair latency (detect a killed replica,
   respawn it, restore it from the healthy peer's snapshot) with
   bit-identity preserved throughout;
9. **kernel backends** — the compiled-vs-numpy ingest race: every
   loadable :mod:`repro.kernels` backend (numpy / numba / cffi) runs
   the same fused tug-of-war scatter, F_k digit scatter, and
   partitioner hash-route over one signed histogram, with every
   compiled state checked **bit-identical** against the numpy oracle.
   The >= 5x compiled-over-numpy bar is enforced when numba is
   importable on full runs; reported-only under ``--smoke`` and on
   hosts without numba;
10. **sampler kernels** (section 2b) — the counter-RNG sampler race:
   both sampler kinds ingest the same stream through the pre-PR
   Python path (a per-element loop drawing from the legacy stateful
   pcg64 generator), the counter-scheme per-element loop, and the
   counter-scheme batched path under every loadable kernel backend,
   with every batched state checked for **exact state identity**
   (full snapshot equality) against the numpy oracle and the scalar
   loop.  The >= 5x batched-numpy-over-legacy bar is enforced for
   the fast-query sample-count variant and naive-sampling whenever
   numba is importable; the plain sample-count tracker is reported
   unenforced.

The acceptance bar (ISSUE 1): batched ingestion at least 10x faster
than the per-element loop on a million-element stream, and the sharded
build bit-identical to the single-shot build.  ISSUE 2 adds the
windowed bar: merge-on-query over any bucket range must equal the
monolithic build bit for bit.  ISSUE 3 adds the serving bar: cached
merged-window queries at least 10x lower latency than cold
merge-on-query, and concurrent ingest+query ending bit-identical to a
serial replay.  ISSUE 4 adds the planner bar: sub-second deterministic
DP enumeration at n = 12 and a strict DP-beats-greedy win on the star
workload.  ISSUE 5 adds the cluster bar: 4-shard over-the-wire ingest
throughput at least 2x the single-process (1-shard) serving pipeline,
with bit-identical scatter–gather answers.  ISSUE 6 adds the wire bar:
binary-protocol batched ingest at least 10x the line-JSON path's
values/second through the same client → front end → shard topology,
bit-identical to an in-process service (reported but not enforced
under ``--smoke``).  ISSUE 7 adds the fault-tolerance bar: with one
replica stalled, hedged query p99 at least 5x better than unhedged
(enforced on full runs; reported under ``--smoke``), and recovery
from a killed replica bit-identical.  ISSUE 10 adds the sampler bar:
counter-scheme batched sampler ingest at least 5x the legacy pcg64
per-element loop for samplecount-fast and naivesampling when numba is
importable, with all ingest routes landing on identical snapshots.
The script exits non-zero if any check fails.

``--json PATH`` additionally writes a machine-readable summary
(per-section latency percentiles and throughput) so the performance
trajectory is tracked across PRs.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--json PATH]
      PYTHONPATH=src python benchmarks/bench_engine.py --smoke --json PATH
      # --smoke: service + planner + cluster sections only, CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

import numpy as np

from repro.core.naivesampling import NaiveSamplingEstimator
from repro.core.samplecount import SampleCountSketch
from repro.core.tugofwar import TugOfWarSketch
from repro.engine import sharded_build
from repro.planner import (
    BoundAwareCardinalities,
    ExactCardinalities,
    JoinGraph,
    SketchCardinalities,
    enumerate_dp,
    enumerate_greedy,
    evaluate_plan,
)
from repro.relational import Relation, SignatureCatalog
from repro.service import SketchService
from repro.store import SketchSpec, WindowedSketchStore


def timed(fn) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def throughput(n: int, seconds: float) -> str:
    """Human-readable elements/second."""
    if seconds <= 0:
        return "inf"
    return f"{n / seconds / 1e6:8.2f} M elem/s"


def service_section(args, n: int) -> tuple[list[str], dict]:
    """Section 5: the estimation-service load generator.

    Self-contained (builds its own stream and store) so ``--smoke``
    can run it alone.  Returns (failed acceptance checks, metrics).
    """
    failures: list[str] = []
    rng = np.random.default_rng(args.seed)
    stream = (rng.zipf(1.2, size=n) % (n // 10)).astype(np.int64)
    num_buckets = 64
    timestamps = (np.arange(n, dtype=np.int64) * num_buckets) // n
    spec = SketchSpec(
        "tugofwar", {"s1": args.s1, "s2": args.s2, "seed": args.seed}
    )
    store = WindowedSketchStore(spec, bucket_width=1)
    store.ingest(timestamps, stream)
    service = SketchService(store, cache_entries=512)

    # A mix of window sizes and offsets, every one span-aligned.
    windows = [
        (b0, b0 + width)
        for width in (8, 16, 32, 64)
        for b0 in range(0, num_buckets - width + 1, 8)
    ]

    def percentiles(samples: list[float]) -> tuple[float, float]:
        arr = np.asarray(samples) * 1e3  # -> milliseconds
        return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))

    cold: list[float] = []
    for window in windows:  # first touch: every query is a miss
        t, _ = timed(lambda w=window: service.estimate(*w))
        cold.append(t)
    cached: list[float] = []
    for _ in range(10):
        for window in windows:
            t, _ = timed(lambda w=window: service.estimate(*w))
            cached.append(t)
    cold_p50, cold_p99 = percentiles(cold)
    hot_p50, hot_p99 = percentiles(cached)
    ratio = cold_p50 / hot_p50 if hot_p50 else float("inf")

    print(f"estimation service ({len(windows)} windows over {num_buckets} buckets)")
    print(f"  cold merge-on-query   p50 {cold_p50:9.4f} ms   p99 {cold_p99:9.4f} ms")
    print(f"  cached merged-window  p50 {hot_p50:9.4f} ms   p99 {hot_p99:9.4f} ms"
          f"   ({ratio:.0f}x)")
    if ratio < 10.0:
        failures.append(
            f"service: cached speedup {ratio:.1f}x below the 10x bar"
        )
    for window in windows:
        if service.estimate(*window) != store.estimate(*window):
            failures.append(f"service: cached estimate for {window} != store")
            break

    # Multi-threaded churn: writers ingest late arrivals into already
    # queried buckets while readers hammer the window mix.
    n_writers, n_readers = 2, 4
    batches_per_writer, batch = (10, 2_000) if n <= 100_000 else (20, 10_000)
    writer_batches = []
    for w in range(n_writers):
        wrng = np.random.default_rng(args.seed + 100 + w)
        writer_batches.append([
            (
                wrng.integers(0, num_buckets, size=batch),
                (wrng.zipf(1.2, size=batch) % (n // 10)).astype(np.int64),
            )
            for _ in range(batches_per_writer)
        ])
    stop = threading.Event()
    latencies: list[list[float]] = [[] for _ in range(n_readers)]
    errors: list[BaseException] = []

    def writer(batches):
        try:
            for ts, vals in batches:
                service.ingest(ts, vals)
        except BaseException as exc:
            errors.append(exc)

    def reader(bucket: list[float]):
        try:
            i = 0
            while not stop.is_set():
                window = windows[i % len(windows)]
                t, _ = timed(lambda w=window: service.estimate(*w))
                bucket.append(t)
                i += 1
        except BaseException as exc:
            errors.append(exc)

    readers = [
        threading.Thread(target=reader, args=(latencies[i],))
        for i in range(n_readers)
    ]
    writers = [threading.Thread(target=writer, args=(b,)) for b in writer_batches]
    start = time.perf_counter()
    for t in readers + writers:
        t.start()
    for t in writers:
        t.join()
    stop.set()
    for t in readers:
        t.join()
    elapsed = time.perf_counter() - start
    all_latencies = [t for bucket in latencies for t in bucket]
    churn_p50, churn_p99 = percentiles(all_latencies)
    qps = len(all_latencies) / elapsed if elapsed else float("inf")
    print(f"  under ingest churn    p50 {churn_p50:9.4f} ms   p99 {churn_p99:9.4f} ms"
          f"   ({qps:,.0f} queries/s, {n_readers} readers, {n_writers} writers)")
    if errors:
        failures.append(f"service: concurrent run raised {errors[0]!r}")

    # Serial replay of the same history must match bit for bit.
    replay = WindowedSketchStore(spec, bucket_width=1)
    replay.ingest(timestamps, stream)
    for batches in writer_batches:
        for ts, vals in batches:
            replay.ingest(ts, vals)
    identical = all(
        service.estimate(*w) == replay.estimate(*w)
        and np.array_equal(service.query(*w).counters, replay.query(*w).counters)
        for w in windows
    )
    print(f"  post-churn estimates bit-identical to serial replay: {identical}")
    if not identical:
        failures.append("service: post-churn state != serial replay")
    stats = service.stats()
    print(f"  cache: hits={stats['hits']:,} misses={stats['misses']:,} "
          f"coalesced={stats['coalesced']:,} invalidated={stats['invalidated']:,}")
    metrics = {
        "cold_p50_ms": cold_p50,
        "cold_p99_ms": cold_p99,
        "cached_p50_ms": hot_p50,
        "cached_p99_ms": hot_p99,
        "cached_speedup": ratio,
        "churn_p50_ms": churn_p50,
        "churn_p99_ms": churn_p99,
        "churn_queries_per_s": qps,
    }
    return failures, metrics


def keyed_section(
    args, n: int, key_counts: tuple[int, ...] = (1, 100, 10_000)
) -> tuple[list[str], dict]:
    """Section 6: keyed-fleet ingest+query as key cardinality grows.

    One n-event Zipf stream is spread over 1, 100, and 10k keys and
    driven through a :class:`KeyedSketchService` — concurrent writers
    each owning a key slice race readers querying sampled keys — so
    the numbers answer "what does multi-tenancy cost?" at both ends of
    the cardinality spectrum.  Acceptance: per-key answers are
    bit-identical to a monolithic per-key store fed only that key's
    events, and one key's ingest must not evict another key's cached
    window (the per-(key, window) invalidation contract).
    """
    from repro.service import KeyedSketchService
    from repro.store import KeyedSketchStore

    failures: list[str] = []
    metrics: dict = {}
    num_buckets = 16
    spec = SketchSpec(
        "tugofwar", {"s1": args.s1, "s2": args.s2, "seed": args.seed}
    )
    print(f"keyed fleet (n={n:,} events, {num_buckets} buckets)")

    for key_count in key_counts:
        rng = np.random.default_rng(args.seed)
        stream = (rng.zipf(1.2, size=n) % max(n // 10, 16)).astype(np.int64)
        timestamps = rng.integers(0, num_buckets, size=n).astype(np.int64)
        key_ids = rng.integers(0, key_count, size=n)
        keys = [f"tenant-{i}" for i in range(key_count)]

        service = KeyedSketchService(
            KeyedSketchStore(spec, bucket_width=1), cache_entries=512
        )

        # Writers each own a contiguous key slice: the fleet's write
        # lock is shared, so this measures contention, not parallelism.
        n_writers = min(4, key_count) if key_count > 1 else 1
        order = np.argsort(key_ids, kind="stable")
        slices: list[list[tuple[str, np.ndarray, np.ndarray]]] = [
            [] for _ in range(n_writers)
        ]
        bounds = np.searchsorted(key_ids[order], np.arange(key_count + 1))
        for i in range(key_count):
            sel = order[bounds[i]:bounds[i + 1]]
            if sel.size:
                slices[i % n_writers].append(
                    (keys[i], timestamps[sel], stream[sel])
                )

        errors: list[BaseException] = []

        def writer(batches):
            try:
                for key, ts, vals in batches:
                    service.ingest(ts, vals, key=key)
            except BaseException as exc:  # pragma: no cover - reported below
                errors.append(exc)

        sampled = keys[:: max(key_count // 32, 1)][:32]
        stop = threading.Event()
        read_latencies: list[float] = []

        def reader():
            try:
                i = 0
                while not stop.is_set():
                    key = sampled[i % len(sampled)]
                    t, _ = timed(
                        lambda k=key: service.estimate(0, num_buckets, key=k)
                    )
                    read_latencies.append(t)
                    i += 1
            except BaseException as exc:  # pragma: no cover - reported below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(batches,))
            for batches in slices
            if batches
        ] + [threading.Thread(target=reader) for _ in range(2)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads[: -2]:
            t.join()
        ingest_s = time.perf_counter() - start
        stop.set()
        for t in threads[-2:]:
            t.join()
        if errors:
            failures.append(
                f"keyed: {key_count}-key run raised {errors[0]!r}"
            )

        # Steady-state query latency once every write has landed.
        hot: list[float] = []
        for _ in range(3):
            for key in sampled:
                t, _ = timed(
                    lambda k=key: service.estimate(0, num_buckets, key=k)
                )
                hot.append(t)
        hot_ms = float(np.percentile(np.asarray(hot) * 1e3, 50))
        churn_ms = (
            float(np.percentile(np.asarray(read_latencies) * 1e3, 50))
            if read_latencies
            else float("nan")
        )
        print(
            f"  {key_count:>6,} keys  ingest {ingest_s:7.3f} s  "
            f"{throughput(n, ingest_s)}   query p50 {hot_ms:8.4f} ms  "
            f"(churn p50 {churn_ms:8.4f} ms)"
        )
        metrics[f"keys_{key_count}"] = {
            "ingest_s": ingest_s,
            "ingest_meps": n / ingest_s / 1e6 if ingest_s else float("inf"),
            "query_p50_ms": hot_ms,
            "churn_p50_ms": churn_ms,
        }

        # Bit-identity: each sampled key vs a monolithic store fed only
        # that key's slice of the stream.
        for key in sampled[:8]:
            i = keys.index(key)
            sel = key_ids == i
            if not sel.any():
                continue  # a key the stream never touched
            mono = WindowedSketchStore(spec, bucket_width=1)
            mono.ingest(timestamps[sel], stream[sel])
            got = service.query(0, num_buckets, key=key)
            want = mono.query(0, num_buckets)
            if not np.array_equal(got.counters, want.counters):
                failures.append(
                    f"keyed: {key_count}-key fleet, {key} != monolithic"
                )
                break

        # Cache isolation: a hot window of key A must survive an
        # ingest into key B (and the reverse must invalidate).
        if key_count >= 2:
            a, b = keys[0], keys[1]
            service.estimate(0, num_buckets, key=a)  # warm A
            before = service.stats()["hits"]
            service.ingest([0], [1], key=b)
            service.estimate(0, num_buckets, key=a)
            if service.stats()["hits"] != before + 1:
                failures.append(
                    f"keyed: {key_count}-key fleet, B's ingest evicted "
                    "A's cached window"
                )
    return failures, metrics


def cluster_section(args, n: int) -> tuple[list[str], dict]:
    """Section 8: multi-process scale-out — the cluster scaling curve.

    Spawns a real :class:`repro.cluster.LocalCluster` worker fleet per
    shard count, drives it through :class:`repro.cluster.
    ClusterService` (value-hash routing, scatter–gather merge), and
    measures over-the-wire ingest throughput plus query latency.  Two
    client threads keep batches in flight so JSON encoding on the
    client overlaps decode+ingest on the workers — the same pipelining
    a real front end does.  Every configuration's estimates must be
    bit-identical to a monolithic store of the same stream, and the
    4-shard ingest throughput must be at least 2x the 1-shard
    (single-process) serving pipeline.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.cluster import ClusterService, LocalCluster, store_config

    failures: list[str] = []
    rng = np.random.default_rng(args.seed)
    stream = (rng.zipf(1.2, size=n) % (n // 10)).astype(np.int64)
    num_buckets = 64
    timestamps = (np.arange(n, dtype=np.int64) * num_buckets) // n
    spec = SketchSpec(
        "tugofwar", {"s1": args.s1, "s2": args.s2, "seed": args.seed}
    )
    mono = WindowedSketchStore(spec, bucket_width=1)
    t_direct, _ = timed(lambda: mono.ingest(timestamps, stream))

    windows = [
        (b0, b0 + width)
        for width in (8, 16, 32, 64)
        for b0 in range(0, num_buckets - width + 1, 16)
    ]
    batch = max(n // 40, 1)
    batches = [
        (timestamps[i:i + batch], stream[i:i + batch])
        for i in range(0, n, batch)
    ]

    print(f"cluster scale-out ({n:,} events, {num_buckets} buckets, "
          f"{len(batches)} wire batches)")
    print(f"  direct in-process ingest      {t_direct:8.3f} s  "
          f"{throughput(n, t_direct)}   (no wire, reference)")

    metrics: dict = {
        "direct_ingest_s": t_direct,
        "direct_ingest_meps": n / t_direct / 1e6 if t_direct else float("inf"),
        "shards": {},
    }
    ingest_tput: dict[int, float] = {}
    for num_shards in (1, 2, 4, 8):
        config = store_config(WindowedSketchStore(spec, bucket_width=1))
        with LocalCluster(config, num_shards) as cluster, \
                ClusterService(cluster.clients()) as service:
            # Two client threads keep the wire full: encode of batch
            # k+1 overlaps the workers' decode+ingest of batch k.
            with ThreadPoolExecutor(max_workers=2) as pool:
                t_ingest, _ = timed(lambda: list(
                    pool.map(lambda b: service.ingest(*b), batches)
                ))
            latencies = []
            for _ in range(3):
                for window in windows:
                    t, _ = timed(lambda w=window: service.estimate(*w))
                    latencies.append(t * 1e3)
            p50 = float(np.percentile(latencies, 50))
            p99 = float(np.percentile(latencies, 99))
            identical = all(
                service.estimate(*w) == mono.estimate(*w)
                and np.array_equal(
                    service.query(*w).counters, mono.query(*w).counters
                )
                for w in ((0, num_buckets), (0, 8), (16, 48))
            )
        tput = n / t_ingest if t_ingest else float("inf")
        ingest_tput[num_shards] = tput
        print(f"  {num_shards} shard{'s' if num_shards > 1 else ' '} "
              f"  wire ingest {t_ingest:8.3f} s  {throughput(n, t_ingest)}"
              f"   query p50 {p50:7.3f} ms  p99 {p99:7.3f} ms"
              f"   bit-identical: {identical}")
        if not identical:
            failures.append(
                f"cluster: {num_shards}-shard estimates != monolithic store"
            )
        metrics["shards"][str(num_shards)] = {
            "ingest_s": t_ingest,
            "ingest_meps": tput / 1e6,
            "query_p50_ms": p50,
            "query_p99_ms": p99,
        }
    speedup = (
        ingest_tput[4] / ingest_tput[1] if ingest_tput[1] else float("inf")
    )
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cores = os.cpu_count() or 1
    metrics["speedup_4v1"] = speedup
    metrics["usable_cores"] = cores
    print(f"  4-shard vs single-process ingest speedup: {speedup:.2f}x "
          f"({cores} usable cores)")
    if cores >= 4:
        if speedup < 2.0:
            failures.append(
                f"cluster: 4-shard ingest speedup {speedup:.2f}x below the "
                "2x bar"
            )
    else:
        # Four workers cannot beat one worker on wall clock without
        # cores to run on; the curve above is still the scaling
        # artifact, but the bar would only measure the host.
        print(f"  NOTE: {cores} usable core(s) < 4 — the 2x wall-clock bar "
              "is not enforceable on this host; skipped")

    print()
    # The wire race self-sizes: full runs use 4 batches of 400k so the
    # per-batch framing cost is amortised for both protocols; --smoke
    # keeps the CI-sized stream (4 batches of n/4).
    wire_n = n if args.smoke else max(n, 1_600_000)
    wire_failures, metrics["wire"] = wire_section(args, wire_n)
    failures.extend(wire_failures)
    return failures, metrics


def wire_section(args, n: int) -> tuple[list[str], dict]:
    """Section 8 (wire): line-JSON vs binary protocol, end to end.

    Each protocol drives an identical serving topology — a client
    through an :class:`repro.service.EventLoopServer` front end,
    scatter–gathering over a 2-shard :class:`repro.cluster.
    LocalCluster` fleet — so every ingested value crosses the wire
    twice (client→front, front→shard) in that protocol.  The stream is
    weighted ingest — 17-digit keys over a dense 4096-value domain
    plus a signed-count column — in batches timestamped at a single
    bucket (the arrival-batched common case the scalar-timestamp frame
    encodes in 8 bytes total): the shape where the line-JSON protocol
    pays decimal string encode + parse per value per column per hop
    and rescans megabyte lines for the ``\\n`` terminator, while the
    binary protocol ships length-prefixed packed int64 columns that
    every hop decodes zero-copy.

    The bar (ISSUE 6): binary wire ingest at least **10x** the
    line-JSON path's values/second on this fleet (enforced on full
    runs; measured and reported in ``--smoke``), with both fleets'
    estimates bit-identical to an in-process monolithic service over
    the same stream — frequency-kind estimates are exact integers, so
    equality is exact, not approximate.
    """
    from repro.cluster import ClusterService, LocalCluster, store_config
    from repro.cluster.client import ShardClient
    from repro.service import EventLoopServer

    failures: list[str] = []
    num_buckets = 4
    batch = max(n // num_buckets, 1)  # one single-bucket batch per bucket
    base = 7_654_321_098_765_432  # 17 decimal digits per key on the JSON wire
    rng = np.random.default_rng(args.seed + 9)
    values = base + rng.integers(0, 4096, size=n).astype(np.int64)
    counts = rng.integers(1, 5, size=n).astype(np.int64)
    batches = []
    for index, start in enumerate(range(0, n, batch)):
        vals = values[start:start + batch]
        ts = np.full(
            vals.size, (index % num_buckets), dtype=np.int64
        )
        batches.append((ts, vals, counts[start:start + batch]))

    spec = SketchSpec("frequency", {})
    mono = WindowedSketchStore(spec, bucket_width=1)
    for ts, vals, cnts in batches:
        mono.ingest(ts, vals, counts=cnts)
    windows = [(0, num_buckets), (0, 2), (1, 3), (0, 3)]
    expected = {w: mono.estimate(*w) for w in windows}

    # Min over repeats, fresh fleet each: wall-clock minimum is the
    # noise-robust cost estimator on a shared host (anything above the
    # minimum is interference, not protocol cost).  --smoke reports a
    # single CI-sized shot.
    repeats = 1 if args.smoke else 3
    print(f"wire protocols ({n:,} events, {len(batches)} batches of "
          f"{batch:,}, client -> front end -> 2 shards, "
          f"best of {repeats})")
    metrics: dict = {}
    rates: dict[str, float] = {}
    for protocol in ("json", "binary"):
        t_ingest = float("inf")
        latencies: list[float] = []
        identical = True
        for _ in range(repeats):
            config = store_config(WindowedSketchStore(spec, bucket_width=1))
            with LocalCluster(config, 2, protocol=protocol) as cluster, \
                    ClusterService(cluster.clients()) as service:
                front = EventLoopServer(
                    service, ("127.0.0.1", 0), read_timeout=600.0
                )
                thread = threading.Thread(
                    target=front.serve_forever, daemon=True
                )
                thread.start()
                try:
                    host, port = front.server_address[:2]
                    with ShardClient(
                        host, port, timeout=600.0, protocol=protocol
                    ) as client:
                        if protocol == "binary":
                            t_run, total = timed(
                                lambda: client.ingest_batches(
                                    batches, window=8
                                )
                            )
                        else:
                            # The legacy path: one JSON request per
                            # round trip, values as decimal strings at
                            # each hop.
                            def json_ingest():
                                total = 0
                                for ts, vals, cnts in batches:
                                    total += client.request({
                                        "op": "ingest",
                                        "timestamps": ts,
                                        "values": vals,
                                        "counts": cnts,
                                    })["ingested"]
                                return total

                            t_run, total = timed(json_ingest)
                        answers = {}
                        for _ in range(5):
                            for window in windows:
                                t, response = timed(
                                    lambda w=window: client.request({
                                        "op": "estimate", "from": w[0],
                                        "until": w[1],
                                    })
                                )
                                latencies.append(t * 1e3)
                                answers[window] = response["estimate"]
                finally:
                    front.shutdown()
                    thread.join(timeout=30)
                    front.server_close()
            t_ingest = min(t_ingest, t_run)
            identical = identical and total == n and all(
                answers[w] == expected[w] for w in windows
            )
        rate = n / t_ingest if t_ingest else float("inf")
        rates[protocol] = rate
        p50 = float(np.percentile(latencies, 50))
        p99 = float(np.percentile(latencies, 99))
        print(f"  {protocol:6s} wire ingest {t_ingest:8.3f} s  "
              f"{throughput(n, t_ingest)}   query p50 {p50:7.3f} ms  "
              f"p99 {p99:7.3f} ms   bit-identical: {identical}")
        if not identical:
            failures.append(
                f"wire: {protocol} fleet estimates != in-process service"
            )
        metrics[protocol] = {
            "ingest_s": t_ingest,
            "ingest_values_per_s": rate,
            "query_p50_ms": p50,
            "query_p99_ms": p99,
        }
    speedup = (
        rates["binary"] / rates["json"] if rates["json"] else float("inf")
    )
    metrics["binary_vs_json_speedup"] = speedup
    print(f"  binary vs line-JSON wire ingest speedup: {speedup:.2f}x")
    if args.smoke:
        # CI-sized streams under-fill the pipeline; the bar is
        # enforced on full runs and reported here.
        print("  NOTE: --smoke reports the ratio without enforcing the "
              "10x bar (CI-sized stream)")
    elif speedup < 10.0:
        failures.append(
            f"wire: binary ingest speedup {speedup:.2f}x below the 10x bar"
        )
    return failures, metrics


def fault_section(args, n: int) -> tuple[list[str], dict]:
    """Section 9: fault tolerance — replication cost, hedging, repair.

    Three measurements against real spawned fleets (ISSUE 7):

    * **replication overhead** — over-the-wire ingest throughput on a
      2-shard fleet at replication factor 1/2/3 (``--smoke``: 1/2).
      Fan-out to a replica set is the same linear build R times over,
      so every factor's answers must stay **bit-identical** to a
      monolithic store of the stream;
    * **hedged p99 under a straggler** — before every query the
      primary replica of shard 0 is deterministically stalled (a
      client-hook sleep that fires outside the connection lock, so
      stalled requests pile up in parallel, not in line).  The hedged
      front end answers from the healthy peer one hedge delay later;
      the unhedged front end waits out the stall.  The acceptance bar:
      hedged query p99 at least **5x** better than unhedged (enforced
      on full runs; measured and reported in ``--smoke``);
    * **repair latency** — SIGKILL one replica mid-stream and time the
      next ingest end to end: it must detect the dead replica, respawn
      it through the supervisor, restore it from the healthy peer's
      snapshot, and leave answers **bit-identical** with no replica
      out of rotation.
    """
    from repro.cluster import (
        ClusterService,
        FaultInjector,
        LocalCluster,
        StallRequests,
        store_config,
    )

    failures: list[str] = []
    rng = np.random.default_rng(args.seed)
    stream = (rng.zipf(1.2, size=n) % (n // 10)).astype(np.int64)
    num_buckets = 64
    timestamps = (np.arange(n, dtype=np.int64) * num_buckets) // n
    spec = SketchSpec(
        "tugofwar", {"s1": args.s1, "s2": args.s2, "seed": args.seed}
    )
    mono = WindowedSketchStore(spec, bucket_width=1)
    mono.ingest(timestamps, stream)
    batch = max(n // 20, 1)
    batches = [
        (timestamps[i:i + batch], stream[i:i + batch])
        for i in range(0, n, batch)
    ]
    checks = ((0, num_buckets), (0, 8), (16, 48))

    def identical(service) -> bool:
        return all(
            service.estimate(*w) == mono.estimate(*w)
            and np.array_equal(
                service.query(*w).counters, mono.query(*w).counters
            )
            for w in checks
        )

    def fresh_config() -> dict:
        return store_config(WindowedSketchStore(spec, bucket_width=1))

    print(f"fault tolerance ({n:,} events, 2 shards, "
          f"{len(batches)} wire batches)")
    metrics: dict = {"replication": {}}

    # -- replication overhead: ingest cost of fanning to R replicas --
    factors = (1, 2) if args.smoke else (1, 2, 3)
    base_tput = None
    for factor in factors:
        with LocalCluster(fresh_config(), 2, replication=factor) as cluster, \
                ClusterService(
                    cluster.replica_clients(), supervisor=cluster
                ) as service:
            t_ingest, _ = timed(
                lambda: [service.ingest(*b) for b in batches]
            )
            ok = identical(service)
        tput = n / t_ingest if t_ingest else float("inf")
        if base_tput is None:
            base_tput = tput
        overhead = base_tput / tput if tput else float("inf")
        print(f"  replication={factor}   wire ingest {t_ingest:8.3f} s  "
              f"{throughput(n, t_ingest)}   overhead vs R=1: "
              f"{overhead:.2f}x   bit-identical: {ok}")
        if not ok:
            failures.append(
                f"faults: replication={factor} answers != monolithic store"
            )
        metrics["replication"][str(factor)] = {
            "ingest_s": t_ingest,
            "ingest_meps": tput / 1e6,
            "overhead_vs_r1": overhead,
        }

    # -- hedged vs unhedged p99 with one deterministically stalled
    # replica.  Both front ends share one 2x2 fleet (same sketches,
    # same wire); only the read policy differs.
    stall_s = 0.25 if args.smoke else 0.75
    queries = 10 if args.smoke else 20
    window = (0, num_buckets)
    with LocalCluster(fresh_config(), 2, replication=2) as cluster:
        primary = cluster.replica_sets()[0][0].client
        hedged = ClusterService(
            cluster.replica_clients(), supervisor=cluster, pool_size=64
        )
        unhedged = ClusterService(
            cluster.replica_clients(), hedge_delay=None, pool_size=64
        )
        try:
            for b in batches:
                hedged.ingest(*b)

            def stalled_queries(service) -> list[float]:
                latencies = []
                for _ in range(queries):
                    # Clear straggler demotion so every round dispatches
                    # to the (stalled) primary first — worst case, not
                    # the adapted steady state.
                    service._reset_replica_state()
                    with StallRequests(primary, stall_s, ops={"sketch"}):
                        t, _ = timed(lambda: service.estimate(*window))
                    latencies.append(t * 1e3)
                return latencies

            hedged_lat = stalled_queries(hedged)
            time.sleep(stall_s)  # drain abandoned sleepers off the client
            unhedged_lat = stalled_queries(unhedged)
            ok = identical(hedged) and identical(unhedged)
        finally:
            unhedged.close()
            hedged.close()
    hedged_p99 = float(np.percentile(hedged_lat, 99))
    unhedged_p99 = float(np.percentile(unhedged_lat, 99))
    ratio = unhedged_p99 / hedged_p99 if hedged_p99 else float("inf")
    print(f"  stalled-replica query   hedged p99 {hedged_p99:8.3f} ms   "
          f"unhedged p99 {unhedged_p99:8.3f} ms   ratio: {ratio:.2f}x   "
          f"bit-identical: {ok}")
    if not ok:
        failures.append("faults: stalled-fleet answers != monolithic store")
    metrics["hedging"] = {
        "stall_s": stall_s,
        "hedged_p99_ms": hedged_p99,
        "unhedged_p99_ms": unhedged_p99,
        "p99_ratio": ratio,
    }
    if args.smoke:
        print("  NOTE: --smoke reports the hedging ratio without enforcing "
              "the 5x bar (CI-sized host)")
    elif ratio < 5.0:
        failures.append(
            f"faults: hedged p99 only {ratio:.2f}x better than unhedged, "
            "below the 5x bar"
        )

    # -- repair: kill a replica mid-stream, time the recovering ingest --
    with LocalCluster(fresh_config(), 2, replication=2) as cluster, \
            ClusterService(
                cluster.replica_clients(), supervisor=cluster
            ) as service:
        half = len(batches) // 2
        for b in batches[:half]:
            service.ingest(*b)
        FaultInjector(cluster).kill(0, replica=1)
        t_repair, _ = timed(lambda: service.ingest(*batches[half]))
        for b in batches[half + 1:]:
            service.ingest(*b)
        recovered = not service.failed_replicas
        ok = identical(service)
    print(f"  killed-replica repair   detect+respawn+restore ingest "
          f"{t_repair:8.3f} s   recovered: {recovered}   "
          f"bit-identical: {ok}")
    if not recovered:
        failures.append("faults: replica still out of rotation after repair")
    if not ok:
        failures.append("faults: post-repair answers != monolithic store")
    metrics["repair"] = {"repair_ingest_s": t_repair, "recovered": recovered}
    return failures, metrics


class _SeededSelectivities:
    """A deterministic synthetic estimator for enumeration timing.

    Per-edge selectivities are drawn once from a seeded RNG, so the
    scaling runs measure pure enumeration work (no sketch math) and
    repeated enumerations see identical inputs.
    """

    def __init__(self, graph: JoinGraph, seed: int):
        self._graph = graph
        self._rng = np.random.default_rng(seed)
        self._sel: dict[tuple[str, str], float] = {}

    def join_estimate(self, left: str, right: str) -> float:
        key = (left, right) if left <= right else (right, left)
        sel = self._sel.get(key)
        if sel is None:
            sel = float(self._rng.uniform(5e-4, 2e-2))
            self._sel[key] = sel
        return sel * self._graph.size(left) * self._graph.size(right)


def ingest_section(args, n: int) -> tuple[list[str], dict]:
    """Compiled-vs-numpy kernel ingest race (ISSUE 9).

    Races every loadable :mod:`repro.kernels` backend on the fused
    tug-of-war bulk-ingest scatter over one signed histogram, asserting
    **exact counter bit-identity** against the numpy oracle for each
    compiled backend, then reports the same race for the F_k digit
    scatter and the partitioner's fused hash-route kernel.  The >= 5x
    compiled-over-numpy bar is enforced only when numba is importable
    (the bar the issue states is for the jit backend) and the run is
    not ``--smoke``; everywhere else the ratio is reported so the
    trajectory is still tracked.
    """
    import importlib.util

    from repro import kernels
    from repro.core.fkmoments import FkMomentSketch
    from repro.engine.partition import HashPartitioner

    failures: list[str] = []
    rng = np.random.default_rng(args.seed)
    # A signed histogram (inserts and deletions) the length of the
    # stream: every (value, count) pair drives one fused scatter.
    values = (rng.zipf(1.2, size=n) % max(n // 10, 10)).astype(np.int64)
    counts = rng.integers(1, 5, size=n, dtype=np.int64)
    counts[rng.random(n) < 0.25] *= -1
    head = max(1, -int(counts[counts < 0].sum()) + 1)
    counts[0] = head  # keep the running multiset size non-negative
    repeats = 1 if args.smoke else 3

    prior = kernels.active_backend()
    info = kernels.kernel_info(probe=True)
    backends = list(info["available"])  # numpy is always first
    print("kernel ingest race")
    print(f"  backends available: {', '.join(backends)} (active: {prior})")
    section: dict = {
        "backends": backends,
        "kernel": info,
        "tugofwar_s": {},
        "fk_moments_s": {},
        "partition_s": {},
    }
    tow_counters: dict[str, np.ndarray] = {}
    fk_counters: dict[str, np.ndarray] = {}
    assignments: dict[str, np.ndarray] = {}
    try:
        for name in backends:
            kernels.set_backend(name)

            warm = TugOfWarSketch(s1=args.s1, s2=args.s2, seed=args.seed)
            warm.update_from_frequencies(values[:64], np.abs(counts[:64]))
            best = float("inf")
            for _ in range(repeats):
                sk = TugOfWarSketch(s1=args.s1, s2=args.s2, seed=args.seed)
                t, _ = timed(
                    lambda sk=sk: sk.update_from_frequencies(values, counts)
                )
                best = min(best, t)
                tow_counters[name] = sk.counters.copy()
            section["tugofwar_s"][name] = best
            print(f"  tugofwar  {name:>6}   {best:8.3f} s  "
                  f"{throughput(n, best)}")

            fk = FkMomentSketch(k=3, s1=args.s1, s2=args.s2, seed=args.seed)
            fk.update_from_frequencies(values[:64], np.abs(counts[:64]))
            fk = FkMomentSketch(k=3, s1=args.s1, s2=args.s2, seed=args.seed)
            t_fk, _ = timed(
                lambda: fk.update_from_frequencies(values, counts)
            )
            fk_counters[name] = fk.counters.copy()
            section["fk_moments_s"][name] = t_fk
            print(f"  fk k=3    {name:>6}   {t_fk:8.3f} s  "
                  f"{throughput(n, t_fk)}")

            part = HashPartitioner(8, seed=args.seed)
            part.assign(values[:64])  # warm-up
            t_p, assigned = timed(lambda: part.assign(values))
            assignments[name] = assigned
            section["partition_s"][name] = t_p
            print(f"  partition {name:>6}   {t_p:8.3f} s  "
                  f"{throughput(n, t_p)}")
    finally:
        kernels.set_backend(prior)

    for label, states in (
        ("tugofwar", tow_counters),
        ("fk k=3", fk_counters),
        ("partition", assignments),
    ):
        oracle = states["numpy"]
        for name, state in states.items():
            if not np.array_equal(state, oracle):
                failures.append(
                    f"kernels: {label} {name} state != numpy oracle"
                )
        print(f"  {label} bit-identical across backends: "
              f"{all(np.array_equal(s, oracle) for s in states.values())}")

    compiled = {
        b: section["tugofwar_s"][b] for b in backends if b != "numpy"
    }
    if compiled:
        best_name = min(compiled, key=compiled.get)
        ratio = section["tugofwar_s"]["numpy"] / compiled[best_name]
        section["tugofwar_speedup"] = ratio
        section["tugofwar_best_backend"] = best_name
        print(f"  compiled speedup ({best_name} over numpy): {ratio:.1f}x")
        numba_present = importlib.util.find_spec("numba") is not None
        if numba_present and not args.smoke and ratio < 5.0:
            failures.append(
                f"kernels: compiled ingest speedup {ratio:.1f}x below "
                f"the 5x bar"
            )
        elif ratio < 5.0:
            print("  NOTE: 5x bar reported only (smoke run or numba "
                  "not installed)")
    else:
        print("  NOTE: no compiled backend loadable on this host; "
              "numpy-only run")

    return failures, section


def sampler_section(args, n: int) -> tuple[list[str], dict]:
    """Section 2b: counter-RNG sampler ingest race (ISSUE 10).

    Races the two sampler kinds' bulk ingest against the pre-PR Python
    path — a per-element insert loop drawing from the legacy stateful
    pcg64 generator — then runs the counter-scheme batched path under
    every loadable kernel backend, asserting **exact state identity**
    (full ``to_dict`` equality) against the numpy oracle for each
    compiled backend and against the counter per-element loop (the
    three ingest routes must land on the same integers).

    The >= 5x batched-numpy-over-legacy bar is enforced for the
    fast-query sample-count variant and for naive-sampling whenever
    numba is importable (the compiled-toolchain CI lane); the plain
    sample-count tracker is reported unenforced — its per-event sample
    walk is shared Python cost on every backend, so its batched win is
    structurally smaller.
    """
    import importlib.util

    from repro import kernels
    from repro.core.naivesampling import NaiveSamplingEstimator
    from repro.core.samplecount import SampleCountFastQuery

    failures: list[str] = []
    rng = np.random.default_rng(args.seed)
    values = (rng.zipf(1.3, size=n) % max(n // 5, 10)).astype(np.int64)

    kinds = [
        (
            "samplecount",
            False,
            lambda scheme: SampleCountSketch(
                args.s1, args.s2, seed=args.seed, initial_range=n,
                rng_scheme=scheme,
            ),
        ),
        (
            "samplecount-fast",
            True,
            lambda scheme: SampleCountFastQuery(
                args.s1, args.s2, seed=args.seed, initial_range=n,
                rng_scheme=scheme,
            ),
        ),
        (
            "naivesampling",
            True,
            lambda scheme: NaiveSamplingEstimator(
                s=args.s1 * args.s2, seed=args.seed, rng_scheme=scheme
            ),
        ),
    ]

    prior = kernels.active_backend()
    backends = list(kernels.available_backends())  # numpy is always first
    numba_present = importlib.util.find_spec("numba") is not None
    print("sampler ingest race (counter RNG vs legacy pcg64 loop)")
    print(f"  backends available: {', '.join(backends)} (active: {prior})")
    section: dict = {"backends": backends, "kinds": {}}
    try:
        def insert_loop(sk):
            def run():
                for v in values.tolist():
                    sk.insert(v)

            return run

        for name, gated, build in kinds:
            legacy = build("pcg64")
            t_legacy, _ = timed(insert_loop(legacy))

            scalar = build("counter")
            t_scalar, _ = timed(insert_loop(scalar))

            batched_s: dict[str, float] = {}
            states: dict[str, dict] = {}
            for backend in backends:
                kernels.set_backend(backend)
                warm = build("counter")
                warm.update_from_stream(values[:256])
                sk = build("counter")
                t, _ = timed(lambda sk=sk: sk.update_from_stream(values))
                batched_s[backend] = t
                states[backend] = sk.to_dict()
            kernels.set_backend(prior)

            if scalar.to_dict() != states["numpy"]:
                failures.append(
                    f"samplers: {name} counter scalar loop != batched state"
                )
            for backend, state in states.items():
                if state != states["numpy"]:
                    failures.append(
                        f"samplers: {name} {backend} state != numpy oracle"
                    )

            speedup = (
                t_legacy / batched_s["numpy"]
                if batched_s["numpy"]
                else float("inf")
            )
            entry = {
                "legacy_loop_s": t_legacy,
                "counter_scalar_s": t_scalar,
                "batched_s": batched_s,
                "batched_speedup_vs_legacy": speedup,
                "gated": gated,
            }
            print(f"  {name}")
            print(f"    legacy pcg64 loop  {t_legacy:8.3f} s  "
                  f"{throughput(n, t_legacy)}")
            print(f"    counter loop       {t_scalar:8.3f} s  "
                  f"{throughput(n, t_scalar)}")
            for backend in backends:
                t = batched_s[backend]
                print(f"    batched {backend:>7}    {t:8.3f} s  "
                      f"{throughput(n, t)}")
            print(f"    numpy-batched over legacy loop: {speedup:.1f}x"
                  + ("" if gated else "  (reported, not gated)"))
            compiled = {b: batched_s[b] for b in backends if b != "numpy"}
            if compiled:
                best = min(compiled, key=compiled.get)
                ratio = (
                    batched_s["numpy"] / compiled[best]
                    if compiled[best]
                    else float("inf")
                )
                entry["compiled_best_backend"] = best
                entry["compiled_speedup_vs_numpy"] = ratio
                print(f"    compiled speedup ({best} over numpy): {ratio:.1f}x")
            section["kinds"][name] = entry

            if gated and speedup < 5.0:
                if numba_present:
                    failures.append(
                        f"samplers: {name} batched speedup {speedup:.1f}x "
                        f"below the 5x bar"
                    )
                else:
                    print("    NOTE: 5x bar reported only (numba not "
                          "installed)")
    finally:
        kernels.set_backend(prior)

    return failures, section


def _shape_graph(shape: str, n: int) -> JoinGraph:
    sizes = {f"R{i}": 1_000 + 37 * i for i in range(n)}
    if shape == "chain":
        return JoinGraph.chain(sizes)
    if shape == "clique":
        return JoinGraph.clique(sizes)
    items = list(sizes.items())
    return JoinGraph.star(items[0][0], items[0][1], dict(items[1:]))


def planner_section(args) -> tuple[list[str], dict]:
    """Section 7: DP enumeration scaling and plan-quality regret."""
    failures: list[str] = []
    metrics: dict = {"enumeration_ms": {}, "quality": {}}

    # -- enumeration scaling: chain/star/clique up to n = 12 ------------
    print("query planner: DP enumeration scaling")
    repeats = 3
    for shape in ("chain", "star", "clique"):
        for n in (8, 12):
            graph = _shape_graph(shape, n)
            estimator = _SeededSelectivities(graph, seed=args.seed)
            for mode in ("left-deep", "bushy"):
                runs = []
                plans = []
                for _ in range(repeats):
                    t, plan = timed(
                        lambda: enumerate_dp(graph, estimator, mode=mode)
                    )
                    runs.append(t)
                    plans.append(plan)
                p50 = float(np.percentile(np.asarray(runs) * 1e3, 50))
                identical = all(
                    p.structure() == plans[0].structure()
                    and p.cost == plans[0].cost
                    for p in plans[1:]
                )
                print(f"  {shape:6s} n={n:2d} {mode:9s}  p50 {p50:8.2f} ms"
                      f"   bit-identical across runs: {identical}")
                metrics["enumeration_ms"][f"{shape}/n{n}/{mode}"] = p50
                if not identical:
                    failures.append(
                        f"planner: {shape} n={n} {mode} plans differ "
                        "across repeated runs"
                    )
                if n == 12 and min(runs) >= 1.0:
                    failures.append(
                        f"planner: {shape} n=12 {mode} enumeration took "
                        f"{min(runs):.2f} s (sub-second bar)"
                    )

    # -- plan quality: greedy vs DP, sketch vs exact vs bound-aware -----
    # A star workload where the classic small-dimension cross-product
    # trick pays off: every dimension covers the fact domain, so each
    # fact join keeps the intermediate near |F|, while crossing the
    # tiny dimensions first costs |D1| * |D2|.  Left-deep greedy cannot
    # see that; bushy DP (cross products allowed) must find it.
    rng = np.random.default_rng(args.seed)
    domain = 64
    fact_n = 50_000 if args.quick or args.smoke else 200_000
    relations = {
        "F": Relation("F", (rng.zipf(1.4, size=fact_n) % domain).astype(np.int64))
    }
    for i, dim_n in enumerate((60, 70, 80), start=1):
        relations[f"D{i}"] = Relation(
            f"D{i}", rng.integers(0, domain, size=dim_n).astype(np.int64)
        )
    graph = JoinGraph.star(
        "F", relations["F"].size,
        {name: rel.size for name, rel in relations.items() if name != "F"},
    )
    exact = ExactCardinalities(relations)
    catalog = SignatureCatalog(k=1024, seed=args.seed)
    for name, rel in relations.items():
        catalog.register(name, rel.values_array())
    policies = {
        "exact": exact,
        "sketch": SketchCardinalities(catalog),
        "bound": BoundAwareCardinalities(catalog),
    }

    greedy = enumerate_greedy(graph, exact)
    greedy_true = evaluate_plan(greedy, graph, exact).cost
    dp = enumerate_dp(graph, exact, mode="bushy", allow_cross_products=True)
    dp_true = evaluate_plan(dp, graph, exact).cost
    print(f"\nquery planner: plan quality (star, |F|={relations['F'].size:,})")
    print(f"  greedy left-deep      true cost {greedy_true:14,.0f}")
    print(f"  DP bushy (+cross)     true cost {dp_true:14,.0f}"
          f"   ({greedy_true / dp_true:.2f}x cheaper)")
    metrics["quality"]["greedy_true_cost"] = greedy_true
    metrics["quality"]["dp_true_cost"] = dp_true
    if not dp_true < greedy_true:
        failures.append(
            f"planner: DP true cost {dp_true:,.0f} does not beat greedy "
            f"{greedy_true:,.0f} on the star workload"
        )

    best_true = dp_true
    for name, estimator in policies.items():
        plan = enumerate_dp(
            graph, estimator, mode="bushy", allow_cross_products=True
        )
        true_cost = evaluate_plan(plan, graph, exact).cost
        regret = true_cost / best_true if best_true else float("inf")
        print(f"  policy {name:6s} DP     true cost {true_cost:14,.0f}"
              f"   regret {regret:7.3f}x")
        metrics["quality"][f"{name}_regret"] = regret
        if regret > 5.0:
            failures.append(
                f"planner: {name} policy regret {regret:.2f}x above the 5x bar"
            )
    return failures, metrics


def main(argv=None) -> int:
    """Run the benchmark; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="100k-element stream for CI smoke runs (default: 1M)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the service, keyed, planner, cluster, faults, "
        "and ingest sections, CI-sized",
    )
    parser.add_argument(
        "--sections",
        default=None,
        metavar="NAMES",
        help="with --smoke: comma-separated subset to run "
        "(service,keyed,planner,cluster,faults,ingest,samplers; "
        "default: all)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write a machine-readable summary (per-section percentiles "
        "and throughput) to this file",
    )
    parser.add_argument("--s1", type=int, default=256)
    parser.add_argument("--s2", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=4)
    args = parser.parse_args(argv)

    from repro.kernels import kernel_info

    summary: dict = {
        "mode": "smoke" if args.smoke else ("quick" if args.quick else "full"),
        "seed": args.seed,
        "kernel": kernel_info(probe=True),
        "sections": {},
    }

    def finish(failures: list[str], ok_message: str) -> int:
        if args.json_path:
            summary["failures"] = failures
            with open(args.json_path, "w") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
            print(f"wrote benchmark summary to {args.json_path}")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(ok_message)
        return 0

    if args.smoke:
        runners = {
            "service": lambda: service_section(args, n=100_000),
            "keyed": lambda: keyed_section(
                args, n=60_000, key_counts=(1, 100, 1_000)
            ),
            "planner": lambda: planner_section(args),
            "cluster": lambda: cluster_section(args, n=400_000),
            "faults": lambda: fault_section(args, n=200_000),
            "ingest": lambda: ingest_section(args, n=200_000),
            # Full-size stream on purpose: the reservoir's O(k log n)
            # accept count amortises only at scale, so the 5x bar is
            # meaningless on a CI-sized stream.
            "samplers": lambda: sampler_section(args, n=1_000_000),
        }
        if args.sections is None:
            selected = list(runners)
        else:
            selected = [s.strip() for s in args.sections.split(",") if s.strip()]
            unknown = [s for s in selected if s not in runners]
            if unknown:
                parser.error(
                    f"unknown --sections entries {unknown}; "
                    f"choose from {sorted(runners)}"
                )
        failures = []
        for name in selected:
            section_failures, summary["sections"][name] = runners[name]()
            failures.extend(section_failures)
            print()
        return finish(
            failures,
            f"{', '.join(selected)} benchmark checks passed",
        )

    n = 100_000 if args.quick else 1_000_000
    rng = np.random.default_rng(args.seed)
    # Domain scales with n (as in the paper's data sets) so quick and
    # full runs have comparable distinct/length ratios.
    stream = (rng.zipf(1.2, size=n) % (n // 10)).astype(np.int64)
    print(f"stream: n={n:,} (zipf), sketch s1={args.s1} s2={args.s2}\n")
    failures = []

    # ------------------------------------------------------------------
    # 1. tug-of-war: per-element vs batched vs sharded
    # ------------------------------------------------------------------
    def tw() -> TugOfWarSketch:
        return TugOfWarSketch(s1=args.s1, s2=args.s2, seed=args.seed)

    loop_sketch = tw()

    def tw_loop():
        for v in stream.tolist():
            loop_sketch.insert(v)

    t_loop, _ = timed(tw_loop)

    batch_sketch = tw()
    t_batch, _ = timed(lambda: batch_sketch.update_from_stream(stream))

    t_shard, sharded = timed(
        lambda: sharded_build(tw, stream, num_shards=args.shards)
    )
    t_shard_mt, sharded_mt = timed(
        lambda: sharded_build(
            tw, stream, num_shards=args.shards, max_workers=args.shards
        )
    )

    speedup = t_loop / t_batch if t_batch else float("inf")
    print("tug-of-war")
    print(f"  per-element loop   {t_loop:8.3f} s  {throughput(n, t_loop)}")
    print(f"  batched ingest     {t_batch:8.3f} s  {throughput(n, t_batch)}"
          f"   ({speedup:.1f}x)")
    print(f"  sharded x{args.shards} serial  {t_shard:8.3f} s  "
          f"{throughput(n, t_shard)}")
    print(f"  sharded x{args.shards} thread  {t_shard_mt:8.3f} s  "
          f"{throughput(n, t_shard_mt)}")

    if not np.array_equal(loop_sketch.counters, batch_sketch.counters):
        failures.append("tug-of-war: batched state != per-element state")
    for label, built in (("serial", sharded), ("threaded", sharded_mt)):
        if np.array_equal(built.counters, batch_sketch.counters):
            print(f"  sharded {label} merge bit-identical to single-shot: True")
        else:
            failures.append(f"tug-of-war: {label} sharded merge not bit-identical")
    if speedup < 10.0:
        failures.append(
            f"tug-of-war: batched speedup {speedup:.1f}x below the 10x bar"
        )
    summary["sections"]["tugofwar"] = {
        "loop_s": t_loop,
        "batched_s": t_batch,
        "batched_speedup": speedup,
        "batched_meps": n / t_batch / 1e6 if t_batch else float("inf"),
        "sharded_threaded_s": t_shard_mt,
    }

    # 1b. compiled-vs-numpy kernel backend race (ISSUE 9)
    print()
    ingest_failures, summary["sections"]["ingest"] = ingest_section(args, n=n)
    failures.extend(ingest_failures)

    # ------------------------------------------------------------------
    # 2. sample-count: per-element vs vectorised segment walker
    # ------------------------------------------------------------------
    sc_loop = SampleCountSketch(args.s1, args.s2, seed=args.seed, initial_range=n)

    def sc_loop_run():
        for v in stream.tolist():
            sc_loop.insert(v)

    t_sc_loop, _ = timed(sc_loop_run)
    sc_batch = SampleCountSketch(args.s1, args.s2, seed=args.seed, initial_range=n)
    t_sc_batch, _ = timed(lambda: sc_batch.update_from_stream(stream))
    sc_speedup = t_sc_loop / t_sc_batch if t_sc_batch else float("inf")
    print("\nsample-count")
    print(f"  per-element loop   {t_sc_loop:8.3f} s  {throughput(n, t_sc_loop)}")
    print(f"  batched ingest     {t_sc_batch:8.3f} s  {throughput(n, t_sc_batch)}"
          f"   ({sc_speedup:.1f}x)")
    if sc_loop.estimate() != sc_batch.estimate():
        failures.append("sample-count: batched estimate != per-element estimate")
    summary["sections"]["samplecount"] = {
        "loop_s": t_sc_loop,
        "batched_s": t_sc_batch,
        "batched_speedup": sc_speedup,
        "batched_meps": n / t_sc_batch / 1e6 if t_sc_batch else float("inf"),
    }

    # 2b. counter-RNG sampler race vs the legacy pcg64 loop (ISSUE 10).
    # Full-size even under --quick: the reservoir's O(k log n) accept
    # count amortises only at scale, so a 100k stream would measure
    # nothing (same reasoning as the wire section's floor).
    print()
    sampler_failures, summary["sections"]["samplers"] = sampler_section(
        args, n=max(n, 1_000_000)
    )
    failures.extend(sampler_failures)

    # ------------------------------------------------------------------
    # 3. naive-sampling: per-element offers vs skip-jump bulk offers
    # ------------------------------------------------------------------
    ns_loop = NaiveSamplingEstimator(s=args.s1 * args.s2, seed=args.seed)

    def ns_loop_run():
        for v in stream.tolist():
            ns_loop.insert(v)

    t_ns_loop, _ = timed(ns_loop_run)
    ns_batch = NaiveSamplingEstimator(s=args.s1 * args.s2, seed=args.seed)
    t_ns_batch, _ = timed(lambda: ns_batch.update_from_stream(stream))
    ns_speedup = t_ns_loop / t_ns_batch if t_ns_batch else float("inf")
    print("\nnaive-sampling")
    print(f"  per-element loop   {t_ns_loop:8.3f} s  {throughput(n, t_ns_loop)}")
    print(f"  batched ingest     {t_ns_batch:8.3f} s  {throughput(n, t_ns_batch)}"
          f"   ({ns_speedup:.1f}x)")
    if ns_loop.estimate() != ns_batch.estimate():
        failures.append("naive-sampling: batched estimate != per-element estimate")
    summary["sections"]["naivesampling"] = {
        "loop_s": t_ns_loop,
        "batched_s": t_ns_batch,
        "batched_speedup": ns_speedup,
        "batched_meps": n / t_ns_batch / 1e6 if t_ns_batch else float("inf"),
    }

    # ------------------------------------------------------------------
    # 4. windowed store: bucketed ingest + merge-on-query vs monolithic
    # ------------------------------------------------------------------
    num_buckets = 64
    # Timestamps walk the bucket axis in arrival order, with 5% of the
    # batch scattered out of order (late arrivals).
    timestamps = (np.arange(n, dtype=np.int64) * num_buckets) // n
    late = rng.random(n) < 0.05
    timestamps = np.where(
        late, rng.integers(0, num_buckets, size=n), timestamps
    ).astype(np.int64)
    spec = SketchSpec(
        "tugofwar", {"s1": args.s1, "s2": args.s2, "seed": args.seed}
    )

    def build_store(max_workers=None) -> WindowedSketchStore:
        st = WindowedSketchStore(spec, bucket_width=1)
        st.ingest(timestamps, stream, max_workers=max_workers)
        return st

    t_store, store = timed(build_store)
    t_store_mt, store_mt = timed(lambda: build_store(max_workers=args.shards))

    print("\nwindowed store (64 buckets)")
    print(f"  bucketed ingest    {t_store:8.3f} s  {throughput(n, t_store)}")
    print(f"  bucketed ingest x{args.shards} {t_store_mt:7.3f} s  "
          f"{throughput(n, t_store_mt)}")

    query_latencies: dict[str, float] = {}
    for b0, b1 in ((0, 1), (16, 48), (0, num_buckets)):
        repeats = 5
        start = time.perf_counter()
        for _ in range(repeats):
            window = store.query(b0, b1)
        latency_ms = (time.perf_counter() - start) / repeats * 1e3
        query_latencies[f"[{b0},{b1})"] = latency_ms
        mono = tw()
        mono.update_from_stream(stream[(timestamps >= b0) & (timestamps < b1)])
        identical = np.array_equal(window.counters, mono.counters)
        print(f"  query [{b0:2d}, {b1:2d})     {latency_ms:8.3f} ms"
              f"   bit-identical to monolithic: {identical}")
        if not identical:
            failures.append(
                f"windowed store: query [{b0}, {b1}) != monolithic sketch"
            )
    summary["sections"]["windowed_store"] = {
        "ingest_s": t_store,
        "ingest_meps": n / t_store / 1e6 if t_store else float("inf"),
        "ingest_threaded_s": t_store_mt,
        "query_latency_ms": query_latencies,
    }
    if not np.array_equal(
        store_mt.query(0, num_buckets).counters,
        store.query(0, num_buckets).counters,
    ):
        failures.append("windowed store: threaded ingest != serial ingest")

    # ------------------------------------------------------------------
    # 5. estimation service: cold vs cached, then ingest+query churn
    # ------------------------------------------------------------------
    print()
    service_failures, summary["sections"]["service"] = service_section(args, n=n)
    failures.extend(service_failures)

    # ------------------------------------------------------------------
    # 6. keyed fleet: ingest+query as key cardinality grows
    # ------------------------------------------------------------------
    print()
    keyed_failures, summary["sections"]["keyed"] = keyed_section(
        args, n=min(n, 400_000)
    )
    failures.extend(keyed_failures)

    # ------------------------------------------------------------------
    # 7. query planner: DP enumeration scaling + plan-quality regret
    # ------------------------------------------------------------------
    print()
    planner_failures, summary["sections"]["planner"] = planner_section(args)
    failures.extend(planner_failures)

    # ------------------------------------------------------------------
    # 8. cluster scale-out: multi-process sharding curve at 1/2/4/8
    # ------------------------------------------------------------------
    print()
    cluster_failures, summary["sections"]["cluster"] = cluster_section(args, n=n)
    failures.extend(cluster_failures)

    # ------------------------------------------------------------------
    # 9. fault tolerance: replication cost, hedged reads, repair
    # ------------------------------------------------------------------
    print()
    fault_failures, summary["sections"]["faults"] = fault_section(args, n=n)
    failures.extend(fault_failures)

    print()
    return finish(failures, "all engine benchmark checks passed")


if __name__ == "__main__":
    sys.exit(main())
