#!/usr/bin/env python
"""Engine throughput benchmark: batched and sharded vs per-element.

Measures, on one synthetic Zipf stream:

1. **tug-of-war** — per-element ``insert`` loop vs the engine's
   vectorised ``update_from_stream`` bulk load, plus a 4-way sharded
   build (serial and threaded) that must merge to a **bit-identical**
   sketch;
2. **sample-count** — per-element loop vs the vectorised segment
   walker (states must match bit for bit);
3. **naive-sampling** — per-element reservoir offers vs skip-jump
   bulk offers (reservoirs must match bit for bit);
4. **windowed store** — timestamped ingestion throughput (serial and
   threaded) into a time-bucketed store plus merge-on-query latency
   over growing windows, with every windowed estimate checked
   **bit-identical** against a monolithic sketch of the same window;
5. **estimation service** — a load generator against
   :class:`repro.service.SketchService`: cold (merge-on-query) vs
   cached merged-window estimate latency (p50/p99), then query
   throughput under multi-threaded ingest+query churn, with the final
   concurrent state checked **bit-identical** against a serial replay.

The acceptance bar (ISSUE 1): batched ingestion at least 10x faster
than the per-element loop on a million-element stream, and the sharded
build bit-identical to the single-shot build.  ISSUE 2 adds the
windowed bar: merge-on-query over any bucket range must equal the
monolithic build bit for bit.  ISSUE 3 adds the serving bar: cached
merged-window queries at least 10x lower latency than cold
merge-on-query, and concurrent ingest+query ending bit-identical to a
serial replay.  The script exits non-zero if any check fails.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py [--quick]
      PYTHONPATH=src python benchmarks/bench_engine.py --smoke   # service only
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

from repro.core.naivesampling import NaiveSamplingEstimator
from repro.core.samplecount import SampleCountSketch
from repro.core.tugofwar import TugOfWarSketch
from repro.engine import sharded_build
from repro.service import SketchService
from repro.store import SketchSpec, WindowedSketchStore


def timed(fn) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def throughput(n: int, seconds: float) -> str:
    """Human-readable elements/second."""
    if seconds <= 0:
        return "inf"
    return f"{n / seconds / 1e6:8.2f} M elem/s"


def service_section(args, n: int) -> list[str]:
    """Section 5: the estimation-service load generator.

    Self-contained (builds its own stream and store) so ``--smoke``
    can run it alone.  Returns the list of failed acceptance checks.
    """
    failures: list[str] = []
    rng = np.random.default_rng(args.seed)
    stream = (rng.zipf(1.2, size=n) % (n // 10)).astype(np.int64)
    num_buckets = 64
    timestamps = (np.arange(n, dtype=np.int64) * num_buckets) // n
    spec = SketchSpec(
        "tugofwar", {"s1": args.s1, "s2": args.s2, "seed": args.seed}
    )
    store = WindowedSketchStore(spec, bucket_width=1)
    store.ingest(timestamps, stream)
    service = SketchService(store, cache_entries=512)

    # A mix of window sizes and offsets, every one span-aligned.
    windows = [
        (b0, b0 + width)
        for width in (8, 16, 32, 64)
        for b0 in range(0, num_buckets - width + 1, 8)
    ]

    def percentiles(samples: list[float]) -> tuple[float, float]:
        arr = np.asarray(samples) * 1e3  # -> milliseconds
        return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))

    cold: list[float] = []
    for window in windows:  # first touch: every query is a miss
        t, _ = timed(lambda w=window: service.estimate(*w))
        cold.append(t)
    cached: list[float] = []
    for _ in range(10):
        for window in windows:
            t, _ = timed(lambda w=window: service.estimate(*w))
            cached.append(t)
    cold_p50, cold_p99 = percentiles(cold)
    hot_p50, hot_p99 = percentiles(cached)
    ratio = cold_p50 / hot_p50 if hot_p50 else float("inf")

    print(f"estimation service ({len(windows)} windows over {num_buckets} buckets)")
    print(f"  cold merge-on-query   p50 {cold_p50:9.4f} ms   p99 {cold_p99:9.4f} ms")
    print(f"  cached merged-window  p50 {hot_p50:9.4f} ms   p99 {hot_p99:9.4f} ms"
          f"   ({ratio:.0f}x)")
    if ratio < 10.0:
        failures.append(
            f"service: cached speedup {ratio:.1f}x below the 10x bar"
        )
    for window in windows:
        if service.estimate(*window) != store.estimate(*window):
            failures.append(f"service: cached estimate for {window} != store")
            break

    # Multi-threaded churn: writers ingest late arrivals into already
    # queried buckets while readers hammer the window mix.
    n_writers, n_readers = 2, 4
    batches_per_writer, batch = (10, 2_000) if n <= 100_000 else (20, 10_000)
    writer_batches = []
    for w in range(n_writers):
        wrng = np.random.default_rng(args.seed + 100 + w)
        writer_batches.append([
            (
                wrng.integers(0, num_buckets, size=batch),
                (wrng.zipf(1.2, size=batch) % (n // 10)).astype(np.int64),
            )
            for _ in range(batches_per_writer)
        ])
    stop = threading.Event()
    latencies: list[list[float]] = [[] for _ in range(n_readers)]
    errors: list[BaseException] = []

    def writer(batches):
        try:
            for ts, vals in batches:
                service.ingest(ts, vals)
        except BaseException as exc:
            errors.append(exc)

    def reader(bucket: list[float]):
        try:
            i = 0
            while not stop.is_set():
                window = windows[i % len(windows)]
                t, _ = timed(lambda w=window: service.estimate(*w))
                bucket.append(t)
                i += 1
        except BaseException as exc:
            errors.append(exc)

    readers = [
        threading.Thread(target=reader, args=(latencies[i],))
        for i in range(n_readers)
    ]
    writers = [threading.Thread(target=writer, args=(b,)) for b in writer_batches]
    start = time.perf_counter()
    for t in readers + writers:
        t.start()
    for t in writers:
        t.join()
    stop.set()
    for t in readers:
        t.join()
    elapsed = time.perf_counter() - start
    all_latencies = [t for bucket in latencies for t in bucket]
    churn_p50, churn_p99 = percentiles(all_latencies)
    qps = len(all_latencies) / elapsed if elapsed else float("inf")
    print(f"  under ingest churn    p50 {churn_p50:9.4f} ms   p99 {churn_p99:9.4f} ms"
          f"   ({qps:,.0f} queries/s, {n_readers} readers, {n_writers} writers)")
    if errors:
        failures.append(f"service: concurrent run raised {errors[0]!r}")

    # Serial replay of the same history must match bit for bit.
    replay = WindowedSketchStore(spec, bucket_width=1)
    replay.ingest(timestamps, stream)
    for batches in writer_batches:
        for ts, vals in batches:
            replay.ingest(ts, vals)
    identical = all(
        service.estimate(*w) == replay.estimate(*w)
        and np.array_equal(service.query(*w).counters, replay.query(*w).counters)
        for w in windows
    )
    print(f"  post-churn estimates bit-identical to serial replay: {identical}")
    if not identical:
        failures.append("service: post-churn state != serial replay")
    stats = service.stats()
    print(f"  cache: hits={stats['hits']:,} misses={stats['misses']:,} "
          f"coalesced={stats['coalesced']:,} invalidated={stats['invalidated']:,}")
    return failures


def main(argv=None) -> int:
    """Run the benchmark; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="100k-element stream for CI smoke runs (default: 1M)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the estimation-service section, CI-sized",
    )
    parser.add_argument("--s1", type=int, default=256)
    parser.add_argument("--s2", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=4)
    args = parser.parse_args(argv)

    if args.smoke:
        failures = service_section(args, n=100_000)
        print()
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("service benchmark checks passed")
        return 0

    n = 100_000 if args.quick else 1_000_000
    rng = np.random.default_rng(args.seed)
    # Domain scales with n (as in the paper's data sets) so quick and
    # full runs have comparable distinct/length ratios.
    stream = (rng.zipf(1.2, size=n) % (n // 10)).astype(np.int64)
    print(f"stream: n={n:,} (zipf), sketch s1={args.s1} s2={args.s2}\n")
    failures = []

    # ------------------------------------------------------------------
    # 1. tug-of-war: per-element vs batched vs sharded
    # ------------------------------------------------------------------
    def tw() -> TugOfWarSketch:
        return TugOfWarSketch(s1=args.s1, s2=args.s2, seed=args.seed)

    loop_sketch = tw()

    def tw_loop():
        for v in stream.tolist():
            loop_sketch.insert(v)

    t_loop, _ = timed(tw_loop)

    batch_sketch = tw()
    t_batch, _ = timed(lambda: batch_sketch.update_from_stream(stream))

    t_shard, sharded = timed(
        lambda: sharded_build(tw, stream, num_shards=args.shards)
    )
    t_shard_mt, sharded_mt = timed(
        lambda: sharded_build(
            tw, stream, num_shards=args.shards, max_workers=args.shards
        )
    )

    speedup = t_loop / t_batch if t_batch else float("inf")
    print("tug-of-war")
    print(f"  per-element loop   {t_loop:8.3f} s  {throughput(n, t_loop)}")
    print(f"  batched ingest     {t_batch:8.3f} s  {throughput(n, t_batch)}"
          f"   ({speedup:.1f}x)")
    print(f"  sharded x{args.shards} serial  {t_shard:8.3f} s  "
          f"{throughput(n, t_shard)}")
    print(f"  sharded x{args.shards} thread  {t_shard_mt:8.3f} s  "
          f"{throughput(n, t_shard_mt)}")

    if not np.array_equal(loop_sketch.counters, batch_sketch.counters):
        failures.append("tug-of-war: batched state != per-element state")
    for label, built in (("serial", sharded), ("threaded", sharded_mt)):
        if np.array_equal(built.counters, batch_sketch.counters):
            print(f"  sharded {label} merge bit-identical to single-shot: True")
        else:
            failures.append(f"tug-of-war: {label} sharded merge not bit-identical")
    if speedup < 10.0:
        failures.append(
            f"tug-of-war: batched speedup {speedup:.1f}x below the 10x bar"
        )

    # ------------------------------------------------------------------
    # 2. sample-count: per-element vs vectorised segment walker
    # ------------------------------------------------------------------
    sc_loop = SampleCountSketch(args.s1, args.s2, seed=args.seed, initial_range=n)

    def sc_loop_run():
        for v in stream.tolist():
            sc_loop.insert(v)

    t_sc_loop, _ = timed(sc_loop_run)
    sc_batch = SampleCountSketch(args.s1, args.s2, seed=args.seed, initial_range=n)
    t_sc_batch, _ = timed(lambda: sc_batch.update_from_stream(stream))
    sc_speedup = t_sc_loop / t_sc_batch if t_sc_batch else float("inf")
    print("\nsample-count")
    print(f"  per-element loop   {t_sc_loop:8.3f} s  {throughput(n, t_sc_loop)}")
    print(f"  batched ingest     {t_sc_batch:8.3f} s  {throughput(n, t_sc_batch)}"
          f"   ({sc_speedup:.1f}x)")
    if sc_loop.estimate() != sc_batch.estimate():
        failures.append("sample-count: batched estimate != per-element estimate")

    # ------------------------------------------------------------------
    # 3. naive-sampling: per-element offers vs skip-jump bulk offers
    # ------------------------------------------------------------------
    ns_loop = NaiveSamplingEstimator(s=args.s1 * args.s2, seed=args.seed)

    def ns_loop_run():
        for v in stream.tolist():
            ns_loop.insert(v)

    t_ns_loop, _ = timed(ns_loop_run)
    ns_batch = NaiveSamplingEstimator(s=args.s1 * args.s2, seed=args.seed)
    t_ns_batch, _ = timed(lambda: ns_batch.update_from_stream(stream))
    ns_speedup = t_ns_loop / t_ns_batch if t_ns_batch else float("inf")
    print("\nnaive-sampling")
    print(f"  per-element loop   {t_ns_loop:8.3f} s  {throughput(n, t_ns_loop)}")
    print(f"  batched ingest     {t_ns_batch:8.3f} s  {throughput(n, t_ns_batch)}"
          f"   ({ns_speedup:.1f}x)")
    if ns_loop.estimate() != ns_batch.estimate():
        failures.append("naive-sampling: batched estimate != per-element estimate")

    # ------------------------------------------------------------------
    # 4. windowed store: bucketed ingest + merge-on-query vs monolithic
    # ------------------------------------------------------------------
    num_buckets = 64
    # Timestamps walk the bucket axis in arrival order, with 5% of the
    # batch scattered out of order (late arrivals).
    timestamps = (np.arange(n, dtype=np.int64) * num_buckets) // n
    late = rng.random(n) < 0.05
    timestamps = np.where(
        late, rng.integers(0, num_buckets, size=n), timestamps
    ).astype(np.int64)
    spec = SketchSpec(
        "tugofwar", {"s1": args.s1, "s2": args.s2, "seed": args.seed}
    )

    def build_store(max_workers=None) -> WindowedSketchStore:
        st = WindowedSketchStore(spec, bucket_width=1)
        st.ingest(timestamps, stream, max_workers=max_workers)
        return st

    t_store, store = timed(build_store)
    t_store_mt, store_mt = timed(lambda: build_store(max_workers=args.shards))

    print("\nwindowed store (64 buckets)")
    print(f"  bucketed ingest    {t_store:8.3f} s  {throughput(n, t_store)}")
    print(f"  bucketed ingest x{args.shards} {t_store_mt:7.3f} s  "
          f"{throughput(n, t_store_mt)}")

    for b0, b1 in ((0, 1), (16, 48), (0, num_buckets)):
        repeats = 5
        start = time.perf_counter()
        for _ in range(repeats):
            window = store.query(b0, b1)
        latency_ms = (time.perf_counter() - start) / repeats * 1e3
        mono = tw()
        mono.update_from_stream(stream[(timestamps >= b0) & (timestamps < b1)])
        identical = np.array_equal(window.counters, mono.counters)
        print(f"  query [{b0:2d}, {b1:2d})     {latency_ms:8.3f} ms"
              f"   bit-identical to monolithic: {identical}")
        if not identical:
            failures.append(
                f"windowed store: query [{b0}, {b1}) != monolithic sketch"
            )
    if not np.array_equal(
        store_mt.query(0, num_buckets).counters,
        store.query(0, num_buckets).counters,
    ):
        failures.append("windowed store: threaded ingest != serial ingest")

    # ------------------------------------------------------------------
    # 5. estimation service: cold vs cached, then ingest+query churn
    # ------------------------------------------------------------------
    print()
    failures.extend(service_section(args, n=n))

    print()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all engine benchmark checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
