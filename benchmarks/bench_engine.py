#!/usr/bin/env python
"""Engine throughput benchmark: batched and sharded vs per-element.

Measures, on one synthetic Zipf stream:

1. **tug-of-war** — per-element ``insert`` loop vs the engine's
   vectorised ``update_from_stream`` bulk load, plus a 4-way sharded
   build (serial and threaded) that must merge to a **bit-identical**
   sketch;
2. **sample-count** — per-element loop vs the vectorised segment
   walker (states must match bit for bit);
3. **naive-sampling** — per-element reservoir offers vs skip-jump
   bulk offers (reservoirs must match bit for bit).

The acceptance bar (ISSUE 1): batched ingestion at least 10x faster
than the per-element loop on a million-element stream, and the sharded
build bit-identical to the single-shot build.  The script exits
non-zero if either fails.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.naivesampling import NaiveSamplingEstimator
from repro.core.samplecount import SampleCountSketch
from repro.core.tugofwar import TugOfWarSketch
from repro.engine import sharded_build


def timed(fn) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def throughput(n: int, seconds: float) -> str:
    """Human-readable elements/second."""
    if seconds <= 0:
        return "inf"
    return f"{n / seconds / 1e6:8.2f} M elem/s"


def main(argv=None) -> int:
    """Run the benchmark; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="100k-element stream for CI smoke runs (default: 1M)",
    )
    parser.add_argument("--s1", type=int, default=256)
    parser.add_argument("--s2", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=4)
    args = parser.parse_args(argv)

    n = 100_000 if args.quick else 1_000_000
    rng = np.random.default_rng(args.seed)
    # Domain scales with n (as in the paper's data sets) so quick and
    # full runs have comparable distinct/length ratios.
    stream = (rng.zipf(1.2, size=n) % (n // 10)).astype(np.int64)
    print(f"stream: n={n:,} (zipf), sketch s1={args.s1} s2={args.s2}\n")
    failures = []

    # ------------------------------------------------------------------
    # 1. tug-of-war: per-element vs batched vs sharded
    # ------------------------------------------------------------------
    def tw() -> TugOfWarSketch:
        return TugOfWarSketch(s1=args.s1, s2=args.s2, seed=args.seed)

    loop_sketch = tw()

    def tw_loop():
        for v in stream.tolist():
            loop_sketch.insert(v)

    t_loop, _ = timed(tw_loop)

    batch_sketch = tw()
    t_batch, _ = timed(lambda: batch_sketch.update_from_stream(stream))

    t_shard, sharded = timed(
        lambda: sharded_build(tw, stream, num_shards=args.shards)
    )
    t_shard_mt, sharded_mt = timed(
        lambda: sharded_build(
            tw, stream, num_shards=args.shards, max_workers=args.shards
        )
    )

    speedup = t_loop / t_batch if t_batch else float("inf")
    print("tug-of-war")
    print(f"  per-element loop   {t_loop:8.3f} s  {throughput(n, t_loop)}")
    print(f"  batched ingest     {t_batch:8.3f} s  {throughput(n, t_batch)}"
          f"   ({speedup:.1f}x)")
    print(f"  sharded x{args.shards} serial  {t_shard:8.3f} s  "
          f"{throughput(n, t_shard)}")
    print(f"  sharded x{args.shards} thread  {t_shard_mt:8.3f} s  "
          f"{throughput(n, t_shard_mt)}")

    if not np.array_equal(loop_sketch.counters, batch_sketch.counters):
        failures.append("tug-of-war: batched state != per-element state")
    for label, built in (("serial", sharded), ("threaded", sharded_mt)):
        if np.array_equal(built.counters, batch_sketch.counters):
            print(f"  sharded {label} merge bit-identical to single-shot: True")
        else:
            failures.append(f"tug-of-war: {label} sharded merge not bit-identical")
    if speedup < 10.0:
        failures.append(
            f"tug-of-war: batched speedup {speedup:.1f}x below the 10x bar"
        )

    # ------------------------------------------------------------------
    # 2. sample-count: per-element vs vectorised segment walker
    # ------------------------------------------------------------------
    sc_loop = SampleCountSketch(args.s1, args.s2, seed=args.seed, initial_range=n)

    def sc_loop_run():
        for v in stream.tolist():
            sc_loop.insert(v)

    t_sc_loop, _ = timed(sc_loop_run)
    sc_batch = SampleCountSketch(args.s1, args.s2, seed=args.seed, initial_range=n)
    t_sc_batch, _ = timed(lambda: sc_batch.update_from_stream(stream))
    sc_speedup = t_sc_loop / t_sc_batch if t_sc_batch else float("inf")
    print("\nsample-count")
    print(f"  per-element loop   {t_sc_loop:8.3f} s  {throughput(n, t_sc_loop)}")
    print(f"  batched ingest     {t_sc_batch:8.3f} s  {throughput(n, t_sc_batch)}"
          f"   ({sc_speedup:.1f}x)")
    if sc_loop.estimate() != sc_batch.estimate():
        failures.append("sample-count: batched estimate != per-element estimate")

    # ------------------------------------------------------------------
    # 3. naive-sampling: per-element offers vs skip-jump bulk offers
    # ------------------------------------------------------------------
    ns_loop = NaiveSamplingEstimator(s=args.s1 * args.s2, seed=args.seed)

    def ns_loop_run():
        for v in stream.tolist():
            ns_loop.insert(v)

    t_ns_loop, _ = timed(ns_loop_run)
    ns_batch = NaiveSamplingEstimator(s=args.s1 * args.s2, seed=args.seed)
    t_ns_batch, _ = timed(lambda: ns_batch.update_from_stream(stream))
    ns_speedup = t_ns_loop / t_ns_batch if t_ns_batch else float("inf")
    print("\nnaive-sampling")
    print(f"  per-element loop   {t_ns_loop:8.3f} s  {throughput(n, t_ns_loop)}")
    print(f"  batched ingest     {t_ns_batch:8.3f} s  {throughput(n, t_ns_batch)}"
          f"   ({ns_speedup:.1f}x)")
    if ns_loop.estimate() != ns_batch.estimate():
        failures.append("naive-sampling: batched estimate != per-element estimate")

    print()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all engine benchmark checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
