"""Section 4.4: analytic comparison of k-TW vs sample join signatures.

Reproduces the quoted numbers from the paper's (n, SJ) values exactly,
and re-derives the same table from freshly generated data sets.
Asserted shape: the break-even factors and advantages land near the
paper's quoted values (6700 / 4000 / 500 / 150 / 50; 1000 / 20 / 150),
and the win/lose classification at B = n matches the paper:
k-TW already wins at B = n for uniform, mf3, and path.
"""

from __future__ import annotations

import pytest
from conftest import emit, run_once

from repro.experiments.tables import format_table_section44, table_section44

PAPER_BREAK_EVEN = {
    "selfsimilar": 6700,
    "zipf1.5": 4000,
    "poisson": 500,
    "zipf1.0": 150,
    "brown2": 50,
}
PAPER_ADVANTAGE_AT_N = {"uniform": 1000, "mf3": 20, "path": 150}
WINS_AT_B_EQ_N = {"uniform", "mf3", "path"}


def test_section44_paper_values(benchmark):
    rows = run_once(benchmark, table_section44, use_paper_values=True)
    emit("Section 4.4 (paper n, SJ)", format_table_section44(rows))
    by_name = {r.name: r for r in rows}

    for name, factor in PAPER_BREAK_EVEN.items():
        assert by_name[name].break_even_factor == pytest.approx(factor, rel=0.15), name
    for name, adv in PAPER_ADVANTAGE_AT_N.items():
        assert by_name[name].advantage_at_n == pytest.approx(adv, rel=0.2), name
    for name, row in by_name.items():
        wins = row.break_even_factor <= 1.0
        assert wins == (name in WINS_AT_B_EQ_N), name
    # "1-10 for mf2, wuther, genesis, xout1, and yout1"
    for name in ("mf2", "wuther", "genesis", "xout1", "yout1"):
        assert 1.0 <= by_name[name].break_even_factor <= 12.0, name


def test_section44_measured(benchmark, scale):
    rows = run_once(benchmark, table_section44, seed=0, scale=scale)
    emit(f"Section 4.4 (measured, scale={scale})", format_table_section44(rows))
    by_name = {r.name: r for r in rows}
    # The win/lose classification is scale-dependent only through the
    # mild SJ/n drift; the three clear winners stay winners.
    for name in WINS_AT_B_EQ_N:
        assert by_name[name].break_even_factor <= 2.0, name
    # And the heavily-skewed sets stay heavy losers at B = n.
    for name in ("selfsimilar", "zipf1.5"):
        assert by_name[name].break_even_factor > 10.0, name
