"""Ablation: 4-wise vs 2-wise independent sign functions.

Two-wise independence already makes E[Z^2] = SJ(R) (unbiased), but the
variance bound Var[Z^2] <= 2 SJ^2 needs 4-wise independence: with only
pairwise independence the fourth-moment terms E[eps_a eps_b eps_c eps_d]
need not vanish, and on skewed data the estimator's spread can blow up.
This ablation measures the error distribution of both families at equal
budget on a skewed stream.

Expected shape: 4-wise matches or beats 2-wise in tail error; the
2-wise family's variance is unbounded in theory (degree-1 polynomial
signs are highly structured), and in practice its p90 error is
noticeably worse on the skewed stream.
"""

from __future__ import annotations

import numpy as np
from conftest import emit, run_once

from repro.core.frequency import self_join_size
from repro.core.tugofwar import TugOfWarSketch
from repro.data.registry import load_dataset


def _errors(values, exact, independence, seeds, s1=60, s2=5):
    out = []
    for seed in seeds:
        sk = TugOfWarSketch(s1=s1, s2=s2, seed=seed, independence=independence)
        sk.update_from_stream(values)
        out.append(abs(sk.estimate() - exact) / exact)
    return np.asarray(out)


def test_independence_ablation(benchmark, scale):
    values = load_dataset("selfsimilar", rng=0, scale=min(scale, 0.2))
    exact = self_join_size(values)

    def run():
        return (
            _errors(values, exact, 4, range(40)),
            _errors(values, exact, 2, range(40)),
        )

    four, two = run_once(benchmark, run)
    emit(
        "sign-family ablation (selfsimilar, 300 words, 40 seeds)",
        f"4-wise: median {np.median(four):.3f}  p90 {np.quantile(four, 0.9):.3f}\n"
        f"2-wise: median {np.median(two):.3f}  p90 {np.quantile(two, 0.9):.3f}",
    )

    # 4-wise keeps the Theorem 2.2 guarantee: error bound 4/sqrt(60) ~ 52%
    # holds for the overwhelming majority of seeds.
    assert np.quantile(four, 0.9) <= 0.52 * 1.3
    # 4-wise is no worse than 2-wise in the tail (usually strictly better).
    assert np.quantile(four, 0.9) <= np.quantile(two, 0.9) * 1.2
