"""Figures 2-8: accuracy sweeps on the seven statistical data sets.

Each benchmark regenerates one figure's series (normalized estimate vs
log2 sample size, one series per algorithm) and asserts the qualitative
shape the paper reports for that figure:

* Fig 2 zipf1.0     — tug-of-war converges fastest, naive-sampling slowest.
* Fig 3 zipf1.5     — sample-count comparable to tug-of-war, both >> naive.
* Fig 4 uniform     — sample-count does *better* than tug-of-war.
* Fig 5/6 mf2, mf3  — AMS pair comparable; naive far behind on mf3.
* Fig 7 selfsimilar — naive-sampling far worse than both.
* Fig 8 poisson     — everything fine once s >= 256.
"""

from __future__ import annotations

from conftest import assert_final_accuracy, emit, np_seed_for, run_once

from repro.experiments.figures import run_figure
from repro.experiments.metrics import convergence_from_sweep

AMS = ("tug-of-war", "sample-count")


def _figure(benchmark, name, scale, max_log2_s, repeats):
    sweep = run_once(
        benchmark,
        run_figure,
        name,
        scale=scale,
        max_log2_s=max_log2_s,
        seed=np_seed_for(name),
        repeats=repeats,
    )
    conv = convergence_from_sweep(sweep)
    fig = {"zipf1.0": 2, "zipf1.5": 3, "uniform": 4, "mf2": 5, "mf3": 6,
           "selfsimilar": 7, "poisson": 8}[name]
    emit(
        f"Figure {fig} ({name}, scale={scale})",
        sweep.format_table()
        + "\n15%-convergence: "
        + ", ".join(f"{a}={s}" for a, s in conv.items()),
    )
    return sweep, conv


def test_fig02_zipf10(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "zipf1.0", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, AMS, tol=0.5)
    # Common case: tug-of-war <= sample-count <= naive-sampling.
    assert conv["tug-of-war"] is not None
    assert conv["sample-count"] is None or conv["tug-of-war"] <= conv["sample-count"]
    assert conv["naive-sampling"] is None or (
        conv["tug-of-war"] <= conv["naive-sampling"]
    )


def test_fig03_zipf15(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "zipf1.5", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, AMS, tol=0.5)
    # Both AMS algorithms converge; naive needs more words than the
    # better AMS algorithm.
    assert conv["tug-of-war"] is not None and conv["sample-count"] is not None
    best_ams = min(conv["tug-of-war"], conv["sample-count"])
    assert conv["naive-sampling"] is None or conv["naive-sampling"] >= best_ams


def test_fig04_uniform(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "uniform", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, AMS, tol=0.5)
    # The paper's standout: sample-count much better than tug-of-war,
    # which is better than naive-sampling.
    assert conv["sample-count"] is not None
    assert conv["tug-of-war"] is None or conv["sample-count"] <= conv["tug-of-war"]
    assert conv["naive-sampling"] is None or (
        conv["sample-count"] <= conv["naive-sampling"]
    )


def test_fig05_mf2(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "mf2", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, AMS, tol=0.5)
    assert conv["tug-of-war"] is not None and conv["sample-count"] is not None


def test_fig06_mf3(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "mf3", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, AMS, tol=0.5)
    # Low skew: naive-sampling does considerably worse (in the paper it
    # has yet to converge at s = 16384, >80% of the data set).  At
    # reduced scale the sweep's largest samples exceed the stream and
    # naive becomes exact, so the strict claim is full-scale only.
    best_ams = min(conv["tug-of-war"], conv["sample-count"])
    assert conv["naive-sampling"] is None or conv["naive-sampling"] >= best_ams
    if scale >= 1.0:
        assert conv["naive-sampling"] is None or conv["naive-sampling"] > 4 * best_ams


def test_fig07_selfsimilar(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "selfsimilar", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, AMS, tol=0.5)
    assert conv["tug-of-war"] is not None
    assert conv["naive-sampling"] is None or (
        conv["naive-sampling"] >= conv["tug-of-war"]
    )


def test_fig08_poisson(benchmark, scale, max_log2_s, repeats):
    sweep, conv = _figure(benchmark, "poisson", scale, max_log2_s, repeats)
    assert_final_accuracy(sweep, AMS + ("naive-sampling",), tol=0.5)
    # Tiny domain: all three converge within the sweep.
    for algo, s in conv.items():
        assert s is not None, algo
